package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/govern"
	"repro/internal/metrics"
)

// waitSnapshot polls the governor snapshot until cond holds; the admission
// tests use it to sequence a queued statement deterministically.
func waitSnapshot(t *testing.T, e *Engine, what string, cond func(govern.Snapshot) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cond(e.Governor().Snapshot()) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("governor never reached: %s (now %+v)", what, e.Governor().Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStatementMemoryBudgetBounded is the memory-bound proof: calibrate the
// peak of a buffering-heavy statement on an unbudgeted engine, then run the
// same statement under half that budget. The statement must fail with the
// typed budget error while trivial statements still succeed under the same
// budget with their recorded peak inside it — graceful, bounded, typed.
func TestStatementMemoryBudgetBounded(t *testing.T) {
	const heavy = `SELECT c.make, COUNT(*) FROM car c, owner o WHERE c.ownerid = o.id GROUP BY c.make`
	const light = `SELECT id FROM car WHERE make = 'BMW' AND year > 2005`

	e := seedEngine(t, Config{FlightRecorderCapacity: -1})
	if _, err := e.Exec(heavy); err != nil {
		t.Fatal(err)
	}
	recs := e.Recorder().Last(1)
	if len(recs) != 1 || recs[0].MemPeakBytes == 0 {
		t.Fatal("unbudgeted run recorded no memory peak — accounting is dead")
	}
	peak := recs[0].MemPeakBytes

	budget := peak / 2
	cfg := Config{FlightRecorderCapacity: -1}
	cfg.Governor.StatementMemBudgetBytes = budget
	cfg.Governor.GlobalMemBudgetBytes = 8 * peak
	eb := seedEngine(t, cfg)

	_, err := eb.Exec(heavy)
	if err == nil {
		t.Fatalf("statement with calibrated peak %d ran under a %d budget without failing", peak, budget)
	}
	if !errors.Is(err, govern.ErrMemoryBudget) {
		t.Fatalf("over-budget statement error not typed: %v", err)
	}

	res, err := eb.Exec(light)
	if err != nil {
		t.Fatalf("trivial statement under the same budget: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("trivial statement returned nothing")
	}
	lrec := eb.Recorder().Last(1)[0]
	if lrec.MemPeakBytes <= 0 || lrec.MemPeakBytes > budget {
		t.Fatalf("successful statement peak %d outside (0, %d]", lrec.MemPeakBytes, budget)
	}

	// Win or lose, every reservation must have been returned to the pool.
	if used := eb.Governor().Snapshot().GlobalMemUsed; used != 0 {
		t.Fatalf("global pool holds %d bytes after statements finished", used)
	}
}

// TestSamplingShrinksToBudget: a budget generous enough for the executor but
// too small for the configured sample size must shrink the sample — the
// statement succeeds, sampling still happens, nothing errors.
func TestSamplingShrinksToBudget(t *testing.T) {
	cfg := Config{FlightRecorderCapacity: -1}
	cfg.JITS = core.DefaultConfig()
	cfg.JITS.SampleSize = 1000 // the full car table: ~288 KiB of sample buffer
	cfg.JITS.MemBudgetBytes = 200 << 10
	e := seedEngine(t, cfg)

	res, err := e.Exec(`SELECT id FROM car WHERE make = 'Toyota' AND year > 1998`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prepare == nil || res.Prepare.CollectedTables() == 0 {
		t.Fatal("no table was sampled — the budget should shrink the sample, not kill it")
	}
	for _, tr := range res.Prepare.Tables {
		if tr.Collected && tr.SampleRows >= 1000 {
			t.Fatalf("sample of %d rows cannot have fit the 200 KiB budget", tr.SampleRows)
		}
	}
}

// TestAdmissionOverloadShedsTyped is the overload proof: with one admission
// slot held and a one-deep queue occupied, the next arrival must be shed
// immediately with the typed overload error, and the queued statement must
// run to completion once the slot frees. Run under -race in overload-smoke.
func TestAdmissionOverloadShedsTyped(t *testing.T) {
	cfg := Config{}
	cfg.Governor.MaxConcurrent = 1
	cfg.Governor.QueueDepth = 1
	e := seedEngine(t, cfg)

	ticket, err := e.Governor().Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	queuedErr := make(chan error, 1)
	go func() {
		_, err := e.Exec(`SELECT id FROM car WHERE make = 'Honda'`)
		queuedErr <- err
	}()
	waitSnapshot(t, e, "one queued statement", func(s govern.Snapshot) bool { return s.Queued == 1 })

	_, err = e.Exec(`SELECT id FROM car WHERE make = 'Toyota'`)
	if !errors.Is(err, govern.ErrOverloaded) {
		t.Fatalf("arrival at a full queue: err=%v, want ErrOverloaded", err)
	}
	snap := e.Governor().Snapshot()
	if snap.Shed != 1 {
		t.Fatalf("shed=%d, want 1", snap.Shed)
	}
	if !e.Governor().Saturated() {
		t.Fatal("full queue not reported as saturated (health endpoint would lie)")
	}

	ticket.Release()
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued statement after slot freed: %v", err)
	}
	waitSnapshot(t, e, "drained", func(s govern.Snapshot) bool { return s.InFlight == 0 && s.Queued == 0 })
	if e.Governor().Saturated() {
		t.Fatal("drained governor still reports saturated")
	}
}

// TestCancelWhileQueuedIsNotOverload is the cancellation regression: a
// statement cancelled while waiting for admission must surface the caller's
// context error — not the typed overload error — and must not leak its slot
// or count as shed.
func TestCancelWhileQueuedIsNotOverload(t *testing.T) {
	cfg := Config{}
	cfg.Governor.MaxConcurrent = 1
	cfg.Governor.QueueDepth = 4
	e := seedEngine(t, cfg)

	ticket, err := e.Governor().Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	queuedErr := make(chan error, 1)
	go func() {
		_, err := e.ExecContext(ctx, `SELECT id FROM car WHERE make = 'Honda'`)
		queuedErr <- err
	}()
	waitSnapshot(t, e, "one queued statement", func(s govern.Snapshot) bool { return s.Queued == 1 })
	cancel()

	err = <-queuedErr
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled-while-queued error: %v, want context.Canceled", err)
	}
	if errors.Is(err, govern.ErrOverloaded) {
		t.Fatalf("user cancel misreported as overload: %v", err)
	}
	snap := e.Governor().Snapshot()
	if snap.Shed != 0 {
		t.Fatalf("cancel counted as shed: %d", snap.Shed)
	}

	// No leak: the released slot must admit the next statement promptly.
	ticket.Release()
	if _, err := e.Exec(`SELECT id FROM car WHERE make = 'Toyota'`); err != nil {
		t.Fatalf("statement after cancelled waiter: %v", err)
	}
	waitSnapshot(t, e, "drained", func(s govern.Snapshot) bool { return s.InFlight == 0 && s.Queued == 0 })
}

// TestBreakerTripsEndToEnd drives the full loop: slow sampling (injected
// per-chunk latency) trips the breaker, later statements compile catalog-only
// with the breaker degradation counted, and the state is visible through the
// governor snapshot and the SHOW METRICS gauge.
func TestBreakerTripsEndToEnd(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	metrics.Enable()
	defer metrics.Disable()

	cfg := Config{}
	cfg.JITS = core.DefaultConfig()
	cfg.JITS.SampleSize = 200
	cfg.Governor.Breaker = govern.BreakerConfig{
		LatencyThreshold: time.Millisecond,
		Window:           4,
		MinSamples:       2,
		OpenFor:          time.Hour, // stays open for the rest of the test
		HalfOpenProbes:   2,
		GainFloor:        1e12, // feedback can never veto the trip here
	}
	e := seedEngine(t, cfg)

	// Every sampling chunk sleeps 2ms — far over the 1ms threshold — so two
	// sampled tables are enough to trip the breaker.
	if err := faultinject.Arm(faultinject.MorselLatency, faultinject.Spec{Every: 1, Latency: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	slow := []string{
		`SELECT id FROM car WHERE make = 'Toyota' AND year > 1999`,
		`SELECT id FROM owner WHERE city = 'Ottawa' AND salary > 31000`,
		`SELECT id FROM car WHERE make = 'Honda' AND price > 9000`,
	}
	for _, sql := range slow {
		if _, err := e.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if e.Governor().Snapshot().BreakerState == "open" {
			break
		}
	}
	if got := e.Governor().Snapshot().BreakerState; got != "open" {
		t.Fatalf("breaker state %q after sustained slow sampling, want open", got)
	}
	faultinject.Reset() // the latency did its job; keep the rest fast

	// A fresh statement that wants sampling must compile catalog-only.
	res, err := e.Exec(`SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Boston' AND c.year > 2001`)
	if err != nil {
		t.Fatalf("statement under an open breaker must degrade, not fail: %v", err)
	}
	if res.Prepare == nil || !res.Prepare.Degraded {
		t.Fatal("open breaker did not degrade the preparation")
	}
	sawReason := false
	for _, tr := range res.Prepare.Tables {
		if strings.Contains(tr.DegradeReason, "circuit breaker") {
			sawReason = true
		}
	}
	if !sawReason {
		t.Fatalf("no table reports the breaker degrade reason: %+v", res.Prepare.Tables)
	}
	if got := e.Degradation().BreakerOpen; got == 0 {
		t.Fatal("DegradationCounts.BreakerOpen not bumped")
	}

	// The gauge behind SHOW METRICS must read 2 (open).
	mres, err := e.Exec(`SHOW METRICS`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range mres.Rows {
		if row[0].Str() == "govern_breaker_state" {
			found = true
			if v, _ := row[2].AsFloat(); v != 2 {
				t.Fatalf("govern_breaker_state = %v, want 2 (open)", v)
			}
		}
	}
	if !found {
		t.Fatal("govern_breaker_state missing from SHOW METRICS")
	}
}
