package engine

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/core"
	"repro/internal/flightrec"
	"repro/internal/metrics"
)

// recorderEngine is seedEngine with the flight recorder on at default
// capacity and JITS enabled, the configuration the introspection statements
// are most interesting under.
func recorderEngine(t testing.TB) *Engine {
	t.Helper()
	cfg := Config{FlightRecorderCapacity: -1}
	cfg.JITS = core.DefaultConfig()
	cfg.JITS.SampleSize = 200
	return seedEngine(t, cfg)
}

// TestShowStatsThroughExec runs SHOW STATS through the ordinary Exec path
// after a few queries have populated the QSS archive.
func TestShowStatsThroughExec(t *testing.T) {
	e := recorderEngine(t)
	for _, sql := range []string{
		`SELECT id FROM car WHERE make = 'Toyota'`,
		`SELECT id FROM car WHERE make = 'Toyota' AND year > 1995`,
		`SELECT id FROM owner WHERE city = 'Ottawa'`,
	} {
		if _, err := e.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.Exec(`SHOW STATS`)
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"stat", "table", "columns", "dims", "buckets", "merges", "last_used", "updated_at", "staleness", "error_factor"}
	if got := strings.Join(res.Columns, ","); got != strings.Join(wantCols, ",") {
		t.Fatalf("SHOW STATS columns = %s", got)
	}
	if len(res.Rows) == 0 {
		t.Fatal("SHOW STATS returned no rows although the archive is populated")
	}
	sawCar := false
	for _, row := range res.Rows {
		stat, table := row[0].Str(), row[1].Str()
		if !strings.HasPrefix(stat, table+"(") {
			t.Errorf("stat key %q does not carry table %q", stat, table)
		}
		if table == "car" {
			sawCar = true
		}
		if dims := row[3].Int(); dims < 1 {
			t.Errorf("%s: dims = %d", stat, dims)
		}
		if buckets := row[4].Int(); buckets < 1 {
			t.Errorf("%s: buckets = %d", stat, buckets)
		}
		if staleness := row[8].Int(); staleness < 0 {
			t.Errorf("%s: staleness = %d, want >= 0", stat, staleness)
		}
	}
	if !sawCar {
		t.Fatal("no car statistic in SHOW STATS output")
	}
}

// TestShowQueriesThroughExec exercises SHOW QUERIES and SHOW QUERIES LAST n
// and pins the row shape against the flight recorder's own view.
func TestShowQueriesThroughExec(t *testing.T) {
	e := recorderEngine(t)
	stmts := []string{
		`SELECT id FROM car WHERE make = 'Toyota'`,
		`SELECT COUNT(*) FROM owner WHERE city = 'Ottawa'`,
		`INSERT INTO owner VALUES (9001, 'ox', 'Ottawa', 'CA', 1)`,
	}
	for _, sql := range stmts {
		if _, err := e.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.Exec(`SHOW QUERIES LAST 3`)
	if err != nil {
		t.Fatal(err)
	}
	// The SHOW QUERIES statement itself commits only after its result is
	// built, so the snapshot holds exactly the three statements above.
	if len(res.Rows) != 3 {
		t.Fatalf("SHOW QUERIES LAST 3 returned %d rows, want 3", len(res.Rows))
	}
	kinds := []string{"select", "select", "dml"}
	var prevQID int64
	for i, row := range res.Rows {
		qid, kind, sql := row[0].Int(), row[1].Str(), row[2].Str()
		if qid <= prevQID {
			t.Errorf("row %d: qid %d not increasing (prev %d)", i, qid, prevQID)
		}
		prevQID = qid
		if kind != kinds[i] {
			t.Errorf("row %d: kind = %q, want %q", i, kind, kinds[i])
		}
		if sql != stmts[i] {
			t.Errorf("row %d: sql = %q, want %q", i, sql, stmts[i])
		}
		if wall, _ := row[4].AsFloat(); wall < 0 {
			t.Errorf("row %d: wall_ms = %v", i, wall)
		}
	}
	// SELECTs over a JITS engine should have sampled tables on first touch.
	if sampled := res.Rows[0][8].Str(); sampled == "" {
		t.Error("first SELECT recorded no sampled tables under JITS")
	}
	// Unbounded SHOW QUERIES returns at least as much (it now includes the
	// previous SHOW statement itself).
	res2, err := e.Exec(`SHOW QUERIES`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) < 4 {
		t.Fatalf("SHOW QUERIES returned %d rows, want >= 4", len(res2.Rows))
	}
	if got := res2.Rows[len(res2.Rows)-1][1].Str(); got != "show_queries" {
		t.Fatalf("newest record kind = %q, want show_queries", got)
	}
}

// TestShowQueriesDisabledRecorder: with the recorder off (capacity 0) the
// statement still works and reports nothing.
func TestShowQueriesDisabledRecorder(t *testing.T) {
	e := seedEngine(t, Config{})
	if _, err := e.Exec(`SELECT id FROM car WHERE make = 'BMW'`); err != nil {
		t.Fatal(err)
	}
	res, err := e.Exec(`SHOW QUERIES`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("disabled recorder: SHOW QUERIES returned %d rows, want 0", len(res.Rows))
	}
}

// TestShowMetricsThroughExec: the registry snapshot comes back as rows, and
// the statement-kind counters appear with their labels.
func TestShowMetricsThroughExec(t *testing.T) {
	metrics.Enable()
	defer metrics.Disable()
	e := recorderEngine(t)
	if _, err := e.Exec(`SELECT id FROM car WHERE make = 'Toyota'`); err != nil {
		t.Fatal(err)
	}
	res, err := e.Exec(`SHOW METRICS`)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(res.Columns, ","); got != "name,label,value" {
		t.Fatalf("SHOW METRICS columns = %s", got)
	}
	found := map[string]float64{}
	for _, row := range res.Rows {
		if row[0].Str() == "engine_statements_total" {
			v, _ := row[2].AsFloat()
			found[row[1].Str()] = v
		}
	}
	if found[`kind="select"`] < 1 {
		t.Fatalf("engine_statements_total{kind=\"select\"} = %v, want >= 1 (found: %v)", found[`kind="select"`], found)
	}
}

// TestExplainHistoryThroughExec replays a recorded plan with actuals and
// pins the error paths (unknown qid, plan-less statement).
func TestExplainHistoryThroughExec(t *testing.T) {
	e := recorderEngine(t)
	if _, err := e.Exec(`SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Ottawa'`); err != nil {
		t.Fatal(err)
	}
	recs := e.Recorder().Last(1)
	if len(recs) != 1 {
		t.Fatal("no flight record for the SELECT")
	}
	qid := recs[0].QID
	res, err := e.Exec(fmt.Sprintf(`EXPLAIN HISTORY %d`, qid))
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != recs[0].Plan {
		t.Fatalf("EXPLAIN HISTORY plan:\n%s\nrecorded plan:\n%s", res.Plan, recs[0].Plan)
	}
	if !strings.Contains(res.Plan, "(actual rows=") {
		t.Fatalf("replayed plan carries no actuals:\n%s", res.Plan)
	}
	if len(res.Rows) != strings.Count(strings.TrimRight(res.Plan, "\n"), "\n")+1 {
		t.Fatalf("EXPLAIN HISTORY returned %d rows for plan:\n%s", len(res.Rows), res.Plan)
	}

	if _, err := e.Exec(`EXPLAIN HISTORY 999999`); err == nil || !strings.Contains(err.Error(), "no flight record") {
		t.Fatalf("unknown qid: err = %v", err)
	}
	// DML records no plan; replaying it must say so.
	if _, err := e.Exec(`INSERT INTO owner VALUES (9002, 'oy', 'Ottawa', 'CA', 1)`); err != nil {
		t.Fatal(err)
	}
	dmlQID := e.Recorder().Last(1)[0].QID
	if _, err := e.Exec(fmt.Sprintf(`EXPLAIN HISTORY %d`, dmlQID)); err == nil || !strings.Contains(err.Error(), "recorded no plan") {
		t.Fatalf("plan-less statement: err = %v", err)
	}
}

// TestStatementKindMetricLabels pins the metric label each statement kind
// increments: exactly its own child of engine_statements_total, nothing else.
func TestStatementKindMetricLabels(t *testing.T) {
	metrics.Enable()
	defer metrics.Disable()
	e := recorderEngine(t)
	if _, err := e.Exec(`SELECT id FROM car WHERE make = 'Lada'`); err != nil {
		t.Fatal(err) // warm a qid for EXPLAIN HISTORY below
	}
	histQID := e.Recorder().Last(1)[0].QID

	counters := map[string]*metrics.Counter{
		"select":          stmtSelect,
		"explain":         stmtExplain,
		"explain_analyze": stmtExplainAnalyze,
		"explain_history": stmtExplainHistory,
		"show_stats":      stmtShowStats,
		"show_queries":    stmtShowQueries,
		"show_metrics":    stmtShowMetrics,
		"show_accuracy":   stmtShowAccuracy,
		"show_drift":      stmtShowDrift,
		"dml":             stmtDML,
		"ddl":             stmtDDL,
	}
	cases := []struct {
		sql, kind string
	}{
		{`SELECT id FROM car WHERE make = 'Toyota'`, "select"},
		{`EXPLAIN SELECT id FROM car WHERE make = 'Toyota'`, "explain"},
		{`EXPLAIN ANALYZE SELECT id FROM car WHERE make = 'Toyota'`, "explain_analyze"},
		{fmt.Sprintf(`EXPLAIN HISTORY %d`, histQID), "explain_history"},
		{`SHOW STATS`, "show_stats"},
		{`SHOW QUERIES LAST 1`, "show_queries"},
		{`SHOW METRICS`, "show_metrics"},
		{`SHOW ACCURACY`, "show_accuracy"},
		{`SHOW DRIFT`, "show_drift"},
		{`INSERT INTO owner VALUES (9100, 'om', 'Boston', 'US', 1)`, "dml"},
		{`UPDATE owner SET salary = 2 WHERE id = 9100`, "dml"},
		{`DELETE FROM owner WHERE id = 9100`, "dml"},
		{`CREATE TABLE mlabels (id INT)`, "ddl"},
		{`CREATE INDEX ix_mlabels ON mlabels (id)`, "ddl"},
	}
	for _, c := range cases {
		before := map[string]float64{}
		for kind, ctr := range counters {
			before[kind] = ctr.Value()
		}
		if _, err := e.Exec(c.sql); err != nil {
			t.Fatalf("%q: %v", c.sql, err)
		}
		for kind, ctr := range counters {
			delta := ctr.Value() - before[kind]
			want := 0.0
			if kind == c.kind {
				want = 1
			}
			if delta != want {
				t.Errorf("%q: engine_statements_total{kind=%q} delta = %v, want %v", c.sql, kind, delta, want)
			}
		}
	}
}

// actualLine matches one annotated plan operator line:
//
//	TableScan car as c filter[...] rows=40.0 cost=1008 (actual rows=40 units=... wall=...)
var actualLine = regexp.MustCompile(`rows=([0-9]+\.[0-9]) cost=\S+ \(actual rows=([0-9]+) `)

// TestQErrorPropertyMatchesExplainAnalyze is the recorded-q-error property
// test: for every operator the flight recorder captured, recomputing
// max(est, act) / max(1, min(est, act)) from the EXPLAIN ANALYZE text of the
// very same statement must agree with the recorded value — serial and
// parallel. Tolerance: the plan prints estimates rounded to one decimal, so
// the recomputed value can drift by the rounding.
func TestQErrorPropertyMatchesExplainAnalyze(t *testing.T) {
	e := recorderEngine(t)
	queries := []string{
		`EXPLAIN ANALYZE SELECT id FROM car WHERE make = 'Toyota'`,
		`EXPLAIN ANALYZE SELECT id FROM car WHERE make = 'Honda' AND year > 1995`,
		`EXPLAIN ANALYZE SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Ottawa'`,
		`EXPLAIN ANALYZE SELECT COUNT(*) FROM car c, owner o WHERE c.price = o.salary`,
	}
	for _, dop := range []int{1, 4} {
		for _, sql := range queries {
			res, err := e.ExecWith(sql, ExecOptions{Parallelism: dop})
			if err != nil {
				t.Fatalf("dop %d %q: %v", dop, sql, err)
			}
			rec, ok := e.Recorder().Get(e.Recorder().Last(1)[0].QID)
			if !ok || rec.SQL != sql {
				t.Fatalf("dop %d %q: flight record not found", dop, sql)
			}
			// Collect (est, act) pairs from the rendered plan, top-down.
			var parsed [][2]float64
			for _, line := range strings.Split(res.Plan, "\n") {
				m := actualLine.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				est, _ := strconv.ParseFloat(m[1], 64)
				act, _ := strconv.ParseFloat(m[2], 64)
				parsed = append(parsed, [2]float64{est, act})
			}
			if len(parsed) == 0 {
				t.Fatalf("dop %d %q: no annotated operators in plan:\n%s", dop, sql, res.Plan)
			}
			if len(parsed) != len(rec.Operators) {
				t.Fatalf("dop %d %q: plan shows %d annotated operators, record holds %d:\n%s",
					dop, sql, len(parsed), len(rec.Operators), res.Plan)
			}
			worst := 0.0
			for i, op := range rec.Operators {
				recomp := flightrec.QError(parsed[i][0], parsed[i][1])
				diff := op.QError - recomp
				if diff < 0 {
					diff = -diff
				}
				if diff > 0.05+0.05*recomp {
					t.Errorf("dop %d %q op %d (%s): recorded q-error %v, recomputed %v (est %v act %v)",
						dop, sql, i, op.Op, op.QError, recomp, parsed[i][0], parsed[i][1])
				}
				if op.QError > worst {
					worst = op.QError
				}
			}
			if worst != rec.WorstQError {
				t.Errorf("dop %d %q: WorstQError = %v, max over operators = %v", dop, sql, rec.WorstQError, worst)
			}
		}
	}
}

// TestFlightRecordCapturesJITSAndFeedback: the record of an executed SELECT
// carries the JITS sampling outcome, archive traffic and feedback error
// factors, and the phase timings routed from the tracer.
func TestFlightRecordCapturesJITSAndFeedback(t *testing.T) {
	e := recorderEngine(t)
	sql := `SELECT id FROM car WHERE make = 'Toyota' AND year > 1995`
	// Run three times: the first samples, the second materializes the group
	// histogram into the archive, and the third — sensitivity now low — skips
	// sampling and answers from the archive, which the record must show.
	for i := 0; i < 3; i++ {
		if _, err := e.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	recs := e.Recorder().Last(3)
	if len(recs) != 3 {
		t.Fatal("missing flight records")
	}
	first, second := recs[0], recs[2]
	if len(first.Tables) == 0 || !first.Tables[0].Collected {
		t.Fatalf("first run recorded no collected table sample: %+v", first.Tables)
	}
	if len(first.ErrorFactors) == 0 {
		t.Fatal("first run recorded no feedback error factors")
	}
	if second.ArchiveHits == 0 {
		t.Fatalf("third identical run recorded no archive hits (misses=%d)", second.ArchiveMisses)
	}
	phases := map[string]bool{}
	for _, p := range first.Phases {
		phases[p.Phase] = true
	}
	for _, want := range []string{"jits.prepare", "optimize", "execute"} {
		if !phases[want] {
			t.Errorf("first run phases missing %q: %v", want, first.Phases)
		}
	}
	if first.Plan == "" || !strings.Contains(first.Plan, "(actual rows=") {
		t.Fatalf("record plan not annotated:\n%s", first.Plan)
	}
}

// BenchmarkStatementRecorder measures the end-to-end statement cost with the
// flight recorder off vs. on — the <5% overhead budget from the design doc.
// `make bench-smoke` runs both; compare the two numbers.
func BenchmarkStatementRecorderOff(b *testing.B) {
	benchmarkStatement(b, 0)
}

func BenchmarkStatementRecorderOn(b *testing.B) {
	benchmarkStatement(b, -1)
}

func benchmarkStatement(b *testing.B, recorderCap int) {
	cfg := Config{FlightRecorderCapacity: recorderCap}
	cfg.JITS = core.DefaultConfig()
	cfg.JITS.SampleSize = 200
	e := seedEngine(b, cfg)
	sql := `SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Ottawa'`
	if _, err := e.Exec(sql); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// ledgerEngine is recorderEngine with the accuracy ledger enabled — the
// configuration SHOW ACCURACY and SHOW DRIFT are interesting under.
func ledgerEngine(t testing.TB) *Engine {
	t.Helper()
	cfg := Config{FlightRecorderCapacity: -1}
	cfg.JITS = core.DefaultConfig()
	cfg.JITS.SampleSize = 200
	cfg.Accuracy = accuracy.DefaultConfig()
	return seedEngine(t, cfg)
}

// TestShowAccuracyThroughExec runs SHOW ACCURACY through the ordinary Exec
// path after a few queries have fed the ledger, and pins the column shape.
func TestShowAccuracyThroughExec(t *testing.T) {
	e := ledgerEngine(t)
	for _, sql := range []string{
		`SELECT id FROM car WHERE make = 'Toyota'`,
		`SELECT id FROM owner WHERE city = 'Ottawa'`,
		`SELECT id FROM owner WHERE city = 'Ottawa'`,
	} {
		if _, err := e.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.Exec(`SHOW ACCURACY`)
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"stat", "table", "state", "observations", "ewma_qerror",
		"cusum", "churn_rows", "merge_age", "merges", "last_observed", "drifted_at"}
	if got := strings.Join(res.Columns, ","); got != strings.Join(wantCols, ",") {
		t.Fatalf("SHOW ACCURACY columns = %s", got)
	}
	if len(res.Rows) == 0 {
		t.Fatal("SHOW ACCURACY returned no rows although queries ran with the ledger on")
	}
	for _, row := range res.Rows {
		stat, table, state := row[0].Str(), row[1].Str(), row[2].Str()
		if !strings.HasPrefix(stat, table+"(") {
			t.Errorf("stat key %q does not carry table %q", stat, table)
		}
		if state != "fresh" && state != "aging" && state != "drifted" {
			t.Errorf("%s: state = %q", stat, state)
		}
		if obs := row[3].Int(); obs < 1 {
			t.Errorf("%s: observations = %d", stat, obs)
		}
		if q, _ := row[4].AsFloat(); q < 1 {
			t.Errorf("%s: ewma_qerror = %v, want >= 1", stat, q)
		}
		if age := row[7].Int(); age < 0 {
			t.Errorf("%s: merge_age = %d", stat, age)
		}
	}

	// The FOR filter narrows to one table.
	res, err = e.Exec(`SHOW ACCURACY FOR owner`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("SHOW ACCURACY FOR owner returned no rows")
	}
	for _, row := range res.Rows {
		if row[1].Str() != "owner" {
			t.Errorf("FOR owner returned table %q", row[1].Str())
		}
	}
}

// TestShowDriftThroughExec: the drifted subset is empty on a healthy engine
// and carries the same columns as SHOW ACCURACY.
func TestShowDriftThroughExec(t *testing.T) {
	e := ledgerEngine(t)
	if _, err := e.Exec(`SELECT id FROM car WHERE make = 'Toyota'`); err != nil {
		t.Fatal(err)
	}
	res, err := e.Exec(`SHOW DRIFT`)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(res.Columns, ","), strings.Join(accuracyCols, ","); got != want {
		t.Fatalf("SHOW DRIFT columns = %s, want %s", got, want)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("healthy engine reports drifted stats: %+v", res.Rows)
	}
}

// TestShowAccuracyDisabledLedger: with the ledger off the statements still
// work and report nothing.
func TestShowAccuracyDisabledLedger(t *testing.T) {
	e := seedEngine(t, Config{})
	if _, err := e.Exec(`SELECT id FROM car WHERE make = 'BMW'`); err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{`SHOW ACCURACY`, `SHOW DRIFT`} {
		res, err := e.Exec(sql)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 0 {
			t.Fatalf("%s on a disabled ledger returned %d rows", sql, len(res.Rows))
		}
	}
}

// TestShowQueriesEpochColumn: every flight-recorder row carries the archive
// epoch it executed under, surfaced as the (appended-last) epoch column.
func TestShowQueriesEpochColumn(t *testing.T) {
	e := recorderEngine(t)
	if _, err := e.Exec(`SELECT id FROM car WHERE make = 'Toyota'`); err != nil {
		t.Fatal(err)
	}
	res, err := e.Exec(`SHOW QUERIES`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Columns[len(res.Columns)-1]; got != "epoch" {
		t.Fatalf("last SHOW QUERIES column = %q, want epoch", got)
	}
	epochIdx := len(res.Columns) - 1
	for i, row := range res.Rows {
		if ep := row[epochIdx].Int(); ep < 0 {
			t.Errorf("row %d: epoch = %d", i, ep)
		}
	}
	// A DML bumps the archive epoch; the next recorded statement must carry
	// the larger value.
	before := res.Rows[len(res.Rows)-1][epochIdx].Int()
	if _, err := e.Exec(`INSERT INTO owner VALUES (9002, 'ep', 'Ottawa', 'CA', 1)`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Exec(`SELECT id FROM car WHERE make = 'Toyota'`); err != nil {
		t.Fatal(err)
	}
	res, err = e.Exec(`SHOW QUERIES LAST 1`)
	if err != nil {
		t.Fatal(err)
	}
	if after := res.Rows[0][epochIdx].Int(); after <= before {
		t.Fatalf("epoch did not advance across DML: before=%d after=%d", before, after)
	}
}

// BenchmarkStatementLedger measures the end-to-end statement cost with the
// accuracy ledger off vs. on — the same <5% overhead budget the flight
// recorder honors. `make bench-smoke` runs both; compare the two numbers.
func BenchmarkStatementLedgerOff(b *testing.B) {
	benchmarkStatementLedger(b, false)
}

func BenchmarkStatementLedgerOn(b *testing.B) {
	benchmarkStatementLedger(b, true)
}

func benchmarkStatementLedger(b *testing.B, enabled bool) {
	cfg := Config{}
	cfg.JITS = core.DefaultConfig()
	cfg.JITS.SampleSize = 200
	cfg.Accuracy = accuracy.DefaultConfig()
	cfg.Accuracy.Enabled = enabled
	e := seedEngine(b, cfg)
	sql := `SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Ottawa'`
	if _, err := e.Exec(sql); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec(sql); err != nil {
			b.Fatal(err)
		}
	}
}
