package engine_test

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

// TestDifferentialRowwiseVsVectorized replays the paper workload through a
// row-oriented engine (the legacy executor loops, the benchmark baseline)
// and a vectorized engine running on deliberately tiny chunks, and requires
// identical rows, plans and metered work on every query. Together with the
// serial-vs-parallel differential this pins the whole execution matrix:
// vectorization, like parallelism, must be invisible to results and to the
// cost model.
func TestDifferentialRowwiseVsVectorized(t *testing.T) {
	if testing.Short() {
		t.Skip("differential workload replay is slow")
	}
	mkEngine := func(rowOriented bool) (*engine.Engine, *workload.Dataset) {
		cfg := engine.Config{RowOrientedExec: rowOriented}
		if !rowOriented {
			// A tiny chunk size forces every query across many chunk
			// boundaries, exercising the selection-vector and fused-
			// aggregation paths where they could diverge.
			cfg.StorageChunkSize = 64
		}
		cfg.JITS.Enabled = true
		cfg.JITS.SMax = 0.5
		cfg.JITS.SampleSize = 800
		cfg.JITS.Seed = 7
		e := engine.New(cfg)
		d, err := workload.Load(e, workload.Spec{Scale: 0.004, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return e, d
	}
	rowE, d := mkEngine(true)
	vecE, _ := mkEngine(false)

	stmts := d.Workload(220, 99, true)
	queries := 0
	for i, st := range stmts {
		rres, rerr := rowE.Exec(st.SQL)
		vres, verr := vecE.Exec(st.SQL)
		if (rerr == nil) != (verr == nil) {
			t.Fatalf("stmt %d %q: rowwise err %v, vectorized err %v", i, st.SQL, rerr, verr)
		}
		if rerr != nil {
			continue
		}
		if !st.IsQuery {
			if rres.RowsAffected != vres.RowsAffected {
				t.Fatalf("stmt %d %q: rows affected %d vs %d", i, st.SQL, rres.RowsAffected, vres.RowsAffected)
			}
			continue
		}
		queries++
		if diff := diffResults(rres, vres); diff != "" {
			t.Fatalf("query %d %q: %s", i, st.SQL, diff)
		}
		if rp, vp := normalizePlan(rres.Plan), normalizePlan(vres.Plan); rp != vp {
			t.Fatalf("query %d %q: plans diverged\nrowwise:\n%s\nvectorized:\n%s", i, st.SQL, rp, vp)
		}
		// The cost model's metered work — and therefore the paper's
		// simulated timings — must not depend on the execution style.
		for _, u := range []struct {
			name string
			r, v float64
		}{
			{"compile", rres.Metrics.CompileUnits, vres.Metrics.CompileUnits},
			{"exec", rres.Metrics.ExecUnits, vres.Metrics.ExecUnits},
		} {
			diff := u.r - u.v
			if diff < 0 {
				diff = -diff
			}
			if diff > 1e-6*(1+u.r) {
				t.Fatalf("query %d %q: %s units %g vs %g", i, st.SQL, u.name, u.r, u.v)
			}
		}
	}
	if queries < 200 {
		t.Fatalf("only %d queries compared, want >= 200", queries)
	}
}
