package engine_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/workload"
)

// Cross-check property: the flight recorder and the estimator-accuracy
// ledger are two consumers of the same feedback stream (engine.postExecute
// feeds both in one loop), so over any workload they must agree — every
// feedback observation the recorder logged as an error factor is exactly
// one ledger observation, and every ledger EWMA q-error lies inside the
// range of symmetric q-errors the recorder saw. Re-optimization is armed so
// the merged-actuals path (captured actuals from superseded execution
// attempts, unioned with the final attempt's) is covered too: a divergence
// there would double- or under-count one consumer.
func TestFeedbackCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed replay is slow")
	}
	faultinject.Reset()
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := engine.Config{
				FlightRecorderCapacity: 4096,
				Accuracy:               accuracy.Config{Enabled: true},
				Reopt:                  engine.ReoptConfig{Enabled: true, QErrorThreshold: 2, MaxReopts: 3},
			}
			cfg.JITS.Enabled = true
			cfg.JITS.SMax = 0.5
			cfg.JITS.SampleSize = 800
			cfg.JITS.Seed = 7
			e := engine.New(cfg)
			d, err := workload.Load(e, workload.Spec{Scale: 0.004, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			for i, q := range d.Queries(30, seed) {
				if _, err := e.Exec(q.SQL); err != nil {
					t.Fatalf("query %d %q: %v", i, q.SQL, err)
				}
			}

			// Count and bound the recorder's view of the feedback stream.
			recObs := 0
			minQ, maxQ := math.Inf(1), math.Inf(-1)
			for _, rec := range e.Recorder().Last(0) {
				recObs += len(rec.ErrorFactors)
				for _, ef := range rec.ErrorFactors {
					q := math.Max(ef, 1/ef) // symmetric q-error of the ratio
					minQ = math.Min(minQ, q)
					maxQ = math.Max(maxQ, q)
				}
			}
			if recObs == 0 {
				t.Fatal("recorder saw no feedback error factors — the cross-check tested nothing")
			}

			// The ledger must have consumed exactly the same stream.
			ledgerObs := uint64(0)
			for _, s := range e.Accuracy().Snapshot("") {
				ledgerObs += s.Observations
				if s.EWMAQError < minQ-1e-9 || s.EWMAQError > maxQ+1e-9 {
					t.Errorf("stat %s: EWMA q-error %.4f outside observed range [%.4f, %.4f]",
						s.Key, s.EWMAQError, minQ, maxQ)
				}
				if math.IsNaN(s.EWMAQError) || math.IsInf(s.EWMAQError, 0) {
					t.Errorf("stat %s: non-finite EWMA q-error %v", s.Key, s.EWMAQError)
				}
			}
			if uint64(recObs) != ledgerObs {
				t.Fatalf("feedback consumers diverged: recorder logged %d error factors, ledger observed %d",
					recObs, ledgerObs)
			}
		})
	}
}
