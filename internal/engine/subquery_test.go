package engine

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestInSubqueryBasic(t *testing.T) {
	e := seedEngine(t, Config{})
	// Cars owned by owners in Ottawa — cross-checked against the join form.
	sub := mustExec(t, e, `SELECT id FROM car WHERE ownerid IN (SELECT id FROM owner WHERE city = 'Ottawa')`)
	join := mustExec(t, e, `SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Ottawa'`)
	if len(sub.Rows) == 0 {
		t.Fatal("subquery form returned nothing")
	}
	if len(sub.Rows) != len(join.Rows) {
		t.Errorf("subquery %d rows vs join %d rows", len(sub.Rows), len(join.Rows))
	}
	if !strings.Contains(sub.Plan, "Subquery 1:") {
		t.Errorf("plan missing subquery section:\n%s", sub.Plan)
	}
}

func TestInSubqueryEmptyInner(t *testing.T) {
	e := seedEngine(t, Config{})
	res := mustExec(t, e, `SELECT id FROM car WHERE ownerid IN (SELECT id FROM owner WHERE city = 'Atlantis')`)
	if len(res.Rows) != 0 {
		t.Errorf("rows = %d, want 0 for empty inner result", len(res.Rows))
	}
}

func TestInSubqueryWithAggregateInner(t *testing.T) {
	e := seedEngine(t, Config{})
	// Owners whose id equals the maximum car ownerid — a 1-value set.
	res := mustExec(t, e, `SELECT id FROM owner WHERE id IN (SELECT MAX(ownerid) FROM car)`)
	if len(res.Rows) != 1 {
		t.Errorf("rows = %d, want 1", len(res.Rows))
	}
	if res.Rows[0][0].Int() != 199 {
		t.Errorf("id = %v, want 199", res.Rows[0][0])
	}
}

func TestInSubqueryJITSAnalyzesBothBlocks(t *testing.T) {
	cfg := Config{JITS: core.DefaultConfig()}
	cfg.JITS.ForceCollect = true
	e := seedEngine(t, cfg)
	res := mustExec(t, e, `SELECT id FROM car WHERE make = 'Toyota' AND ownerid IN (SELECT id FROM owner WHERE city = 'Ottawa')`)
	// Both blocks carry local predicates, so both tables get sampled —
	// Algorithm 1 iterates over all query blocks.
	if res.Prepare == nil || res.Prepare.CollectedTables() != 2 {
		t.Fatalf("prepare = %+v, want 2 tables collected", res.Prepare)
	}
}

func TestInSubqueryErrors(t *testing.T) {
	e := seedEngine(t, Config{})
	cases := map[string]string{
		`SELECT id FROM car WHERE ownerid IN (SELECT id, name FROM owner)`:                              "exactly one column",
		`SELECT id FROM car WHERE ownerid IN (SELECT * FROM owner)`:                                     "exactly one column",
		`SELECT id FROM car WHERE ownerid IN (SELECT id FROM owner WHERE id IN (SELECT id FROM owner))`: "nested subqueries",
	}
	for sql, want := range cases {
		_, err := e.Exec(sql)
		if err == nil {
			t.Errorf("%q: expected error", sql)
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("%q: error = %v, want %q", sql, err, want)
		}
	}
}

func TestInSubqueryDuplicateInnerValues(t *testing.T) {
	e := seedEngine(t, Config{})
	// Inner result has massive duplication (200 owners × 5 cars each); the
	// semi-join must still return each outer row at most once.
	res := mustExec(t, e, `SELECT id FROM owner WHERE id IN (SELECT ownerid FROM car)`)
	if len(res.Rows) != 200 {
		t.Errorf("rows = %d, want 200 distinct owners", len(res.Rows))
	}
}

func TestExplainSubquery(t *testing.T) {
	e := seedEngine(t, Config{})
	res := mustExec(t, e, `EXPLAIN SELECT id FROM car WHERE ownerid IN (SELECT id FROM owner WHERE city = 'Ottawa')`)
	if !strings.Contains(res.Plan, "Subquery 1:") {
		t.Errorf("explain missing subquery plan:\n%s", res.Plan)
	}
	if res.Metrics.ExecSeconds != 0 {
		t.Errorf("EXPLAIN must not execute the subquery: %v", res.Metrics.ExecSeconds)
	}
}
