package engine_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

// The differential harness: the morsel-driven parallel operators promise
// bit-identical rows in identical order at any degree of parallelism (only
// float aggregates may differ in the last bits, from partial-sum
// association), and identical metered work. Two engines replay the same
// workload — one serial, one parallel — and every SELECT must agree.

// normalizePlan strips the Gather header a parallel plan carries so serial
// and parallel EXPLAIN output can be compared structurally.
func normalizePlan(plan string) string {
	lines := strings.Split(plan, "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "Gather(workers=") {
		return plan
	}
	var out []string
	for _, l := range lines[1:] {
		out = append(out, strings.TrimPrefix(l, "  "))
	}
	return strings.Join(out, "\n")
}

// diffResults compares two results row for row; float cells get a small
// relative tolerance. Returns "" when identical.
func diffResults(serial, parallel *engine.Result) string {
	if len(serial.Columns) != len(parallel.Columns) {
		return fmt.Sprintf("columns %v vs %v", serial.Columns, parallel.Columns)
	}
	if len(serial.Rows) != len(parallel.Rows) {
		return fmt.Sprintf("%d rows vs %d rows", len(serial.Rows), len(parallel.Rows))
	}
	for i := range serial.Rows {
		for j := range serial.Rows[i] {
			sd, pd := serial.Rows[i][j], parallel.Rows[i][j]
			if sf, ok := sd.AsFloat(); ok {
				pf, ok2 := pd.AsFloat()
				if !ok2 {
					return fmt.Sprintf("row %d col %d: %v vs %v", i, j, sd, pd)
				}
				diff, scale := sf-pf, sf
				if diff < 0 {
					diff = -diff
				}
				if scale < 0 {
					scale = -scale
				}
				if scale < 1 {
					scale = 1
				}
				if diff > 1e-9*scale {
					return fmt.Sprintf("row %d col %d: %v vs %v", i, j, sd, pd)
				}
				continue
			}
			if !sd.Equal(pd) && !(sd.IsNull() && pd.IsNull()) {
				return fmt.Sprintf("row %d col %d: %v vs %v", i, j, sd, pd)
			}
		}
	}
	return ""
}

// TestDifferentialSerialVsParallel replays the paper workload — queries and
// update batches, JITS enabled — through a serial and a parallel engine and
// requires identical rows, plans and metered work on every query.
func TestDifferentialSerialVsParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("differential workload replay is slow")
	}
	mkEngine := func(dop int) (*engine.Engine, *workload.Dataset) {
		cfg := engine.Config{Parallelism: dop}
		cfg.JITS.Enabled = true
		cfg.JITS.SMax = 0.5
		cfg.JITS.SampleSize = 800
		cfg.JITS.Seed = 7
		e := engine.New(cfg)
		d, err := workload.Load(e, workload.Spec{Scale: 0.004, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return e, d
	}
	serialE, d := mkEngine(1)
	parallelE, _ := mkEngine(4)

	stmts := d.Workload(220, 99, true)
	queries := 0
	for i, st := range stmts {
		sres, serr := serialE.Exec(st.SQL)
		pres, perr := parallelE.Exec(st.SQL)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("stmt %d %q: serial err %v, parallel err %v", i, st.SQL, serr, perr)
		}
		if serr != nil {
			continue
		}
		if !st.IsQuery {
			if sres.RowsAffected != pres.RowsAffected {
				t.Fatalf("stmt %d %q: rows affected %d vs %d", i, st.SQL, sres.RowsAffected, pres.RowsAffected)
			}
			continue
		}
		queries++
		if diff := diffResults(sres, pres); diff != "" {
			t.Fatalf("query %d %q: %s", i, st.SQL, diff)
		}
		if sp, pp := normalizePlan(sres.Plan), normalizePlan(pres.Plan); sp != pp {
			t.Fatalf("query %d %q: plans diverged\nserial:\n%s\nparallel:\n%s", i, st.SQL, sp, pp)
		}
		// Metered work (and therefore the paper's simulated timings) must
		// not depend on the degree of parallelism.
		for _, u := range []struct {
			name string
			s, p float64
		}{
			{"compile", sres.Metrics.CompileUnits, pres.Metrics.CompileUnits},
			{"exec", sres.Metrics.ExecUnits, pres.Metrics.ExecUnits},
		} {
			diff := u.s - u.p
			if diff < 0 {
				diff = -diff
			}
			if diff > 1e-6*(1+u.s) {
				t.Fatalf("query %d %q: %s units %g vs %g", i, st.SQL, u.name, u.s, u.p)
			}
		}
	}
	if queries < 200 {
		t.Fatalf("only %d queries compared, want >= 200", queries)
	}
}

// fuzzEnv lazily builds the pair of engines the fuzzer reuses across
// inputs: both see the exact same statement stream, so their states stay in
// lockstep as long as the dop-invariance holds.
var fuzzEnv struct {
	once     sync.Once
	serial   *engine.Engine
	parallel *engine.Engine
	data     *workload.Dataset
	err      error
}

func fuzzEngines(t testing.TB) (*engine.Engine, *engine.Engine, *workload.Dataset) {
	fuzzEnv.once.Do(func() {
		build := func() (*engine.Engine, *workload.Dataset, error) {
			e := engine.New(engine.Config{})
			d, err := workload.Load(e, workload.Spec{Scale: 0.002, Seed: 42})
			if err != nil {
				return nil, nil, err
			}
			if err := e.RunstatsAll(); err != nil {
				return nil, nil, err
			}
			return e, d, nil
		}
		var err1, err2 error
		fuzzEnv.serial, fuzzEnv.data, err1 = build()
		fuzzEnv.parallel, _, err2 = build()
		if err1 != nil {
			fuzzEnv.err = err1
		} else if err2 != nil {
			fuzzEnv.err = err2
		}
	})
	if fuzzEnv.err != nil {
		t.Fatal(fuzzEnv.err)
	}
	return fuzzEnv.serial, fuzzEnv.parallel, fuzzEnv.data
}

// FuzzParallelSerial generates workload queries from the fuzzed seed and
// cross-checks serial against parallel execution at a fuzzed dop.
// Run with: go test -run TestDifferential -fuzz=FuzzParallelSerial ./internal/engine/
func FuzzParallelSerial(f *testing.F) {
	// Seed corpus: a spread of query seeds and dops, including the
	// degenerate dop=2 and the oversubscribed dop=8.
	for _, c := range [][2]uint64{
		{1, 2}, {2, 4}, {3, 8}, {42, 4}, {99, 3}, {1234, 5}, {77, 2}, {2026, 6},
	} {
		f.Add(c[0], c[1])
	}
	f.Fuzz(func(t *testing.T, qseed, dop uint64) {
		serialE, parallelE, d := fuzzEngines(t)
		n := int(dop%7) + 2 // clamp to [2, 8]
		for _, st := range d.Queries(3, int64(qseed)) {
			sres, serr := serialE.ExecWith(st.SQL, engine.ExecOptions{Parallelism: 1})
			pres, perr := parallelE.ExecWith(st.SQL, engine.ExecOptions{Parallelism: n})
			if (serr == nil) != (perr == nil) {
				t.Fatalf("%q: serial err %v, parallel err %v", st.SQL, serr, perr)
			}
			if serr != nil {
				continue
			}
			if diff := diffResults(sres, pres); diff != "" {
				t.Fatalf("%q at dop %d: %s", st.SQL, n, diff)
			}
		}
	})
}
