package engine

import (
	"repro/internal/executor"
	"repro/internal/flightrec"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/qgm"
)

// Statement-level instruments on the process-wide default registry. They are
// resolved once at package init so the per-statement path touches only the
// instruments themselves (one atomic load each while the registry is
// disabled — see the metrics package doc).
var (
	stmtWall = metrics.Default().Histogram(
		"engine_statement_wall_seconds",
		"Wall-clock latency of one statement, parse through result.",
		metrics.LatencyBuckets())
	stmtCount = metrics.Default().CounterVec(
		"engine_statements_total",
		"Statements executed, by statement kind.",
		"kind")
	stmtSelect         = stmtCount.With("select")
	stmtExplain        = stmtCount.With("explain")
	stmtExplainAnalyze = stmtCount.With("explain_analyze")
	stmtExplainHistory = stmtCount.With("explain_history")
	stmtShowStats      = stmtCount.With("show_stats")
	stmtShowQueries    = stmtCount.With("show_queries")
	stmtShowMetrics    = stmtCount.With("show_metrics")
	stmtShowAccuracy   = stmtCount.With("show_accuracy")
	stmtShowDrift      = stmtCount.With("show_drift")
	stmtDML            = stmtCount.With("dml")
	stmtDDL            = stmtCount.With("ddl")
	stmtErrors         = metrics.Default().Counter(
		"engine_statement_errors_total",
		"Statements that returned an error.")

	// Per-operator q-error as an aggregable distribution (the flight
	// recorder keeps the same numbers per statement). Observed wherever
	// per-operator actuals are captured — which rides the recorder being
	// enabled, like the actuals themselves. "agg" is the estimate at the
	// aggregation input boundary: the engine does not model group counts,
	// so the plan root's estimate/actual pair is what the aggregation
	// stage was fed.
	qerrorHist = metrics.Default().HistogramVec(
		"engine_qerror",
		"Per-operator q-error (max(est,act)/min(est,act) of cardinalities), by operator kind.",
		"op",
		metrics.QErrorBuckets())
	qerrorScan = qerrorHist.With("scan")
	qerrorJoin = qerrorHist.With("join")
	qerrorAgg  = qerrorHist.With("agg")

	// Mid-query re-optimization instruments: how many pipeline-breaker
	// checkpoints statements evaluated, how often one tripped a re-plan (by
	// the operator kind whose estimate was wrong), and how long re-entrant
	// planning took.
	reoptCheckpoints = metrics.Default().Counter(
		"engine_reopt_checkpoints_total",
		"Pipeline-breaker checkpoints evaluated for mid-query re-optimization.")
	reoptTriggerCount = metrics.Default().CounterVec(
		"engine_reopt_triggers_total",
		"Mid-query re-optimizations triggered, by the misestimated operator kind.",
		"cause")
	reoptTriggerScan = reoptTriggerCount.With("scan")
	reoptTriggerJoin = reoptTriggerCount.With("join")
	reoptWall        = metrics.Default().Histogram(
		"engine_reopt_wall_seconds",
		"Wall-clock time of one mid-query re-planning pass.",
		metrics.LatencyBuckets())
)

// observeAggQError records the "agg" q-error sample for aggregated blocks:
// the plan root's estimated vs. actual cardinality, i.e. the estimate the
// executor's aggregation stage (which has no plan node of its own) was fed.
func observeAggQError(blk *qgm.Block, plan optimizer.Node, stats *executor.ExecStats) {
	if blk == nil || !blk.Aggregated() {
		return
	}
	if st, ok := stats.Lookup(plan); ok {
		qerrorAgg.Observe(flightrec.QError(plan.Rows(), st.Rows))
	}
}
