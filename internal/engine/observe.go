package engine

import (
	"repro/internal/metrics"
)

// Statement-level instruments on the process-wide default registry. They are
// resolved once at package init so the per-statement path touches only the
// instruments themselves (one atomic load each while the registry is
// disabled — see the metrics package doc).
var (
	stmtWall = metrics.Default().Histogram(
		"engine_statement_wall_seconds",
		"Wall-clock latency of one statement, parse through result.",
		metrics.LatencyBuckets())
	stmtCount = metrics.Default().CounterVec(
		"engine_statements_total",
		"Statements executed, by statement kind.",
		"kind")
	stmtSelect         = stmtCount.With("select")
	stmtExplain        = stmtCount.With("explain")
	stmtExplainAnalyze = stmtCount.With("explain_analyze")
	stmtExplainHistory = stmtCount.With("explain_history")
	stmtShowStats      = stmtCount.With("show_stats")
	stmtShowQueries    = stmtCount.With("show_queries")
	stmtShowMetrics    = stmtCount.With("show_metrics")
	stmtDML            = stmtCount.With("dml")
	stmtDDL            = stmtCount.With("ddl")
	stmtErrors         = metrics.Default().Counter(
		"engine_statement_errors_total",
		"Statements that returned an error.")
)
