package engine

import (
	"bytes"
	"fmt"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// traceLineRe matches every line format the engine emits: free-form
// decision lines and structured phase spans, all prefixed with the
// statement's logical timestamp.
var traceLineRe = regexp.MustCompile(`^q\d+ (span|jits|feedback|plan) `)

// TestConcurrentStatementsTraceSafely is the regression test for the
// unsynchronized Config.Trace writes: the engine used to fmt.Fprintf
// directly to the shared writer from every statement, which was a data race
// (and interleaved partial lines) when statements ran concurrently. All
// trace output now funnels through one mutex-guarded tracer, so this test —
// many goroutines executing traced statements against one engine with one
// shared buffer — must pass under -race and leave only whole, well-formed
// lines behind.
func TestConcurrentStatementsTraceSafely(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{JITS: core.DefaultConfig(), Trace: &buf}
	cfg.JITS.SampleSize = 50
	e := seedEngine(t, cfg)

	const goroutines, perG = 8, 10
	queries := []string{
		`SELECT id FROM car WHERE make = 'Toyota'`,
		`SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Ottawa'`,
		`SELECT make, COUNT(*) FROM car WHERE year > 1995 GROUP BY make`,
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := e.Exec(queries[(g+i)%len(queries)]); err != nil {
					t.Errorf("goroutine %d query %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	out := buf.String()
	if out == "" {
		t.Fatal("no trace output produced")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	for i, line := range lines {
		if !traceLineRe.MatchString(line) {
			t.Fatalf("line %d is torn or malformed: %q", i, line)
		}
	}
	// Every statement emits exactly one summary line; none may be lost.
	summaries := 0
	for _, line := range lines {
		if strings.Contains(line, " plan rows=") {
			summaries++
		}
	}
	if summaries != goroutines*perG {
		t.Errorf("plan summary lines = %d, want %d", summaries, goroutines*perG)
	}
}

// TestTracerSpansInPipelineOrder checks that a single traced statement
// emits its phase spans in pipeline order — prepare and sample during
// compilation, execute and feedback after — with the statement's qid on
// every span.
func TestTracerSpansInPipelineOrder(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{JITS: core.DefaultConfig(), Trace: &buf}
	cfg.JITS.SampleSize = 50
	e := seedEngine(t, cfg)
	if _, err := e.Exec(`SELECT id FROM car WHERE make = 'Toyota'`); err != nil {
		t.Fatal(err)
	}
	qid := e.Now()
	var phases []string
	for _, line := range strings.Split(buf.String(), "\n") {
		prefix := fmt.Sprintf("q%d span ", qid)
		rest, ok := strings.CutPrefix(line, prefix)
		if !ok {
			continue
		}
		phases = append(phases, strings.Fields(rest)[0])
	}
	want := []string{"jits.prepare", "optimize", "execute", "feedback"}
	got := strings.Join(phases, ",")
	// jits.sample nests inside jits.prepare and ends before it, so it
	// appears first in emission order when collection happens.
	got = strings.TrimPrefix(got, "jits.sample,")
	if got != strings.Join(want, ",") {
		t.Errorf("span order = %v, want sample?,%v\ntrace:\n%s", phases, want, buf.String())
	}
}
