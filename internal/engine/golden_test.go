package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/value"
)

// TestRandomizedQueriesMatchReference cross-checks the full engine pipeline
// (parser → QGM → JITS → optimizer → executor) against a brute-force
// reference evaluation for hundreds of randomized filter/join/aggregate
// queries, with and without JITS. Whatever plan the optimizer picks, the
// result multiset must equal the reference.
func TestRandomizedQueriesMatchReference(t *testing.T) {
	for _, jits := range []bool{false, true} {
		name := "noJITS"
		cfg := Config{}
		if jits {
			name = "JITS"
			cfg.JITS = core.DefaultConfig()
			cfg.JITS.SampleSize = 200
		}
		t.Run(name, func(t *testing.T) {
			e := seedEngine(t, cfg)
			rng := rand.New(rand.NewSource(7))

			// Snapshot reference data.
			type carRow struct {
				id, ownerid, year int64
				make_, model      string
				price             float64
			}
			type ownerRow struct {
				id            int64
				city, country string
				salary        float64
			}
			var cars []carRow
			var owners []ownerRow
			carT, _ := e.DB().Table("car")
			carT.Scan(func(_ int, r []value.Datum) bool {
				cars = append(cars, carRow{
					id: r[0].Int(), ownerid: r[1].Int(), make_: r[2].Str(),
					model: r[3].Str(), year: r[4].Int(), price: r[5].Float(),
				})
				return true
			})
			ownerT, _ := e.DB().Table("owner")
			ownerT.Scan(func(_ int, r []value.Datum) bool {
				owners = append(owners, ownerRow{
					id: r[0].Int(), city: r[2].Str(), country: r[3].Str(), salary: r[4].Float(),
				})
				return true
			})
			ownerByID := map[int64]ownerRow{}
			for _, o := range owners {
				ownerByID[o.id] = o
			}

			makes := []string{"Toyota", "Honda", "BMW", "Lada"}
			models := []string{"Camry", "Corolla", "Civic", "X5", "Yaris"}
			cities := []string{"Ottawa", "Toronto", "Boston", "Atlantis"}

			for i := 0; i < 150; i++ {
				mk := makes[rng.Intn(len(makes))]
				md := models[rng.Intn(len(models))]
				city := cities[rng.Intn(len(cities))]
				yr := 1990 + rng.Intn(22)

				var sql string
				var want []int64
				switch rng.Intn(4) {
				case 0: // single-table filter
					sql = fmt.Sprintf(`SELECT id FROM car WHERE make = '%s' AND year > %d`, mk, yr)
					for _, c := range cars {
						if c.make_ == mk && c.year > int64(yr) {
							want = append(want, c.id)
						}
					}
				case 1: // range + IN
					sql = fmt.Sprintf(`SELECT id FROM car WHERE year BETWEEN %d AND %d AND model IN ('%s', '%s')`, yr, yr+5, md, models[0])
					for _, c := range cars {
						if c.year >= int64(yr) && c.year <= int64(yr)+5 && (c.model == md || c.model == models[0]) {
							want = append(want, c.id)
						}
					}
				case 2: // join
					sql = fmt.Sprintf(`SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id AND o.city = '%s' AND c.make = '%s'`, city, mk)
					for _, c := range cars {
						if o, ok := ownerByID[c.ownerid]; ok && o.city == city && c.make_ == mk {
							want = append(want, c.id)
						}
					}
				default: // subquery semi-join
					sql = fmt.Sprintf(`SELECT id FROM car WHERE make = '%s' AND ownerid IN (SELECT id FROM owner WHERE city = '%s')`, mk, city)
					for _, c := range cars {
						if o, ok := ownerByID[c.ownerid]; ok && o.city == city && c.make_ == mk {
							want = append(want, c.id)
						}
					}
				}

				res, err := e.Exec(sql)
				if err != nil {
					t.Fatalf("query %d %q: %v", i, sql, err)
				}
				got := make([]int64, 0, len(res.Rows))
				for _, r := range res.Rows {
					got = append(got, r[0].Int())
				}
				sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
				sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
				if len(got) != len(want) {
					t.Fatalf("query %d %q: got %d rows, want %d\nplan:\n%s", i, sql, len(got), len(want), res.Plan)
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("query %d %q: row %d = %d, want %d", i, sql, j, got[j], want[j])
					}
				}
			}
		})
	}
}

// TestRandomizedAggregatesMatchReference cross-checks COUNT/SUM/AVG/MIN/MAX
// with GROUP BY against a reference computation.
func TestRandomizedAggregatesMatchReference(t *testing.T) {
	e := seedEngine(t, Config{JITS: core.DefaultConfig()})
	rng := rand.New(rand.NewSource(11))

	type agg struct {
		count    int64
		sum      float64
		min, max int64
		seenYear bool
	}
	carT, _ := e.DB().Table("car")

	for i := 0; i < 40; i++ {
		yr := 1990 + rng.Intn(20)
		sql := fmt.Sprintf(`SELECT make, COUNT(*), SUM(price), MIN(year), MAX(year) FROM car WHERE year >= %d GROUP BY make ORDER BY make`, yr)

		ref := map[string]*agg{}
		carT.Scan(func(_ int, r []value.Datum) bool {
			if r[4].Int() < int64(yr) {
				return true
			}
			mk := r[2].Str()
			a, ok := ref[mk]
			if !ok {
				a = &agg{min: 1 << 62, max: -1}
				ref[mk] = a
			}
			a.count++
			a.sum += r[5].Float()
			if y := r[4].Int(); y < a.min {
				a.min = y
			}
			if y := r[4].Int(); y > a.max {
				a.max = y
			}
			a.seenYear = true
			return true
		})

		res, err := e.Exec(sql)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(ref) {
			t.Fatalf("query %q: %d groups, want %d", sql, len(res.Rows), len(ref))
		}
		for _, row := range res.Rows {
			a := ref[row[0].Str()]
			if a == nil {
				t.Fatalf("unexpected group %v", row[0])
			}
			if row[1].Int() != a.count {
				t.Errorf("count(%v) = %v, want %d", row[0], row[1], a.count)
			}
			gotSum, _ := row[2].AsFloat()
			if diff := gotSum - a.sum; diff > 1 || diff < -1 {
				t.Errorf("sum(%v) = %v, want %v", row[0], gotSum, a.sum)
			}
			if row[3].Int() != a.min || row[4].Int() != a.max {
				t.Errorf("min/max(%v) = %v/%v, want %d/%d", row[0], row[3], row[4], a.min, a.max)
			}
		}
	}
}

// TestGoldenParallelExplain pins the exact EXPLAIN text for representative
// plan shapes at parallelism 1 and 4. Parallel plans carry a Gather header
// naming the worker count and indent the operator tree one level; the tree
// itself — access paths, join methods, estimates, costs — must be
// byte-identical to the serial rendering, because the degree of parallelism
// never feeds back into optimization.
func TestGoldenParallelExplain(t *testing.T) {
	e := seedEngine(t, Config{})
	cases := []struct {
		sql      string
		serial   string
		parallel string
	}{
		{
			sql:    `EXPLAIN SELECT id FROM car WHERE make = 'Toyota'`,
			serial: "TableScan car as car filter[make = 'Toyota'] rows=40.0 cost=1008\n",
			parallel: "Gather(workers=4)\n" +
				"  TableScan car as car filter[make = 'Toyota'] rows=40.0 cost=1008\n",
		},
		{
			sql: `EXPLAIN SELECT c.id, o.city FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Ottawa'`,
			serial: "IndexNLJoin on[[1].id = [0].ownerid] rows=40.0 cost=2416\n" +
				"  TableScan owner as o filter[city = 'Ottawa'] rows=40.0 cost=1008\n" +
				"  TableScan car as c rows=1000.0 cost=1200\n",
			parallel: "Gather(workers=4)\n" +
				"  IndexNLJoin on[[1].id = [0].ownerid] rows=40.0 cost=2416\n" +
				"    TableScan owner as o filter[city = 'Ottawa'] rows=40.0 cost=1008\n" +
				"    TableScan car as c rows=1000.0 cost=1200\n",
		},
		{
			sql: `EXPLAIN SELECT COUNT(*) FROM car c, owner o WHERE c.price = o.salary`,
			serial: "HashJoin on[[1].salary = [0].price] rows=1000.0 cost=5100\n" +
				"  TableScan owner as o rows=1000.0 cost=1200\n" +
				"  TableScan car as c rows=1000.0 cost=1200\n",
			parallel: "Gather(workers=4)\n" +
				"  HashJoin on[[1].salary = [0].price] rows=1000.0 cost=5100\n" +
				"    TableScan owner as o rows=1000.0 cost=1200\n" +
				"    TableScan car as c rows=1000.0 cost=1200\n",
		},
		{
			sql:    `EXPLAIN SELECT make, COUNT(*) FROM car WHERE year > 1995 GROUP BY make`,
			serial: "TableScan car as car filter[year > 1995] rows=333.3 cost=1067\n",
			parallel: "Gather(workers=4)\n" +
				"  TableScan car as car filter[year > 1995] rows=333.3 cost=1067\n",
		},
	}
	for _, c := range cases {
		for _, mode := range []struct {
			dop  int
			want string
		}{{1, c.serial}, {4, c.parallel}} {
			res, err := e.ExecWith(c.sql, ExecOptions{Parallelism: mode.dop})
			if err != nil {
				t.Fatalf("%q at dop %d: %v", c.sql, mode.dop, err)
			}
			if res.Plan != mode.want {
				t.Errorf("%q at dop %d:\ngot:\n%s\nwant:\n%s", c.sql, mode.dop, res.Plan, mode.want)
			}
		}
	}
}
