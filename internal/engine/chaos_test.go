package engine_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/govern"
	"repro/internal/value"
	"repro/internal/workload"
)

// The chaos differential harness: replay the paper workload once without
// faults, then again on a fresh engine per fault class with deterministic
// faults armed. Every statement under faults must either return a clean
// error (no panic, engine still usable) or produce results equivalent to
// the fault-free run. Degraded JITS preparations change *plans* — sampling
// faults push the optimizer onto catalog statistics — so equivalence is
// plan-independent: row multisets (sorted fingerprints, floats rounded to 6
// significant digits since different join orders associate partial sums
// differently), and row *counts* only for LIMIT-without-ORDER-BY queries,
// where which rows survive the truncation legitimately depends on the plan.
//
// Data stays in lockstep across runs because the DML paths carry no fault
// points: an UPDATE/INSERT/DELETE that failed would fork the database state
// and invalidate every later comparison, so the harness treats a failed
// update as a test bug, not a tolerated fault.

const (
	chaosStmts = 120
	chaosSeed  = 99
)

func mkChaosEngine(t testing.TB) (*engine.Engine, *workload.Dataset) {
	t.Helper()
	cfg := engine.Config{Parallelism: 4}
	cfg.JITS.Enabled = true
	cfg.JITS.SMax = 0.5
	cfg.JITS.SampleSize = 800
	cfg.JITS.Seed = 7
	e := engine.New(cfg)
	d, err := workload.Load(e, workload.Spec{Scale: 0.004, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return e, d
}

// fingerprintRows renders a result as an order-insensitive multiset
// fingerprint. Floats are rounded to 6 significant digits.
func fingerprintRows(res *engine.Result) string {
	lines := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		var sb strings.Builder
		for j, d := range row {
			if j > 0 {
				sb.WriteByte('|')
			}
			if d.Kind() == value.KindFloat {
				fmt.Fprintf(&sb, "%.6g", d.Float())
			} else {
				sb.WriteString(d.String())
			}
		}
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// limitWithoutOrderBy reports whether a query's row *identity* is
// plan-dependent: LIMIT with no ORDER BY truncates whatever order the plan
// happened to produce, so only the count is comparable across plans.
func limitWithoutOrderBy(sql string) bool {
	return strings.Contains(sql, " LIMIT ") && !strings.Contains(sql, " ORDER BY ")
}

type chaosOutcome struct {
	isQuery   bool
	countOnly bool
	failed    bool
	rows      int
	affected  int
	fp        string
}

// chaosBaseline caches the fault-free replay; every chaos class compares
// against the same baseline, and -count=2 reruns reuse it.
var chaosBaseline struct {
	once     sync.Once
	outcomes []chaosOutcome
	err      error
}

func baselineOutcomes(t *testing.T) []chaosOutcome {
	t.Helper()
	chaosBaseline.once.Do(func() {
		faultinject.Reset()
		e, d := mkChaosEngine(t)
		for _, st := range d.Workload(chaosStmts, chaosSeed, true) {
			res, err := e.Exec(st.SQL)
			o := chaosOutcome{isQuery: st.IsQuery, countOnly: limitWithoutOrderBy(st.SQL)}
			if err != nil {
				o.failed = true
			} else if st.IsQuery {
				o.rows = len(res.Rows)
				o.fp = fingerprintRows(res)
			} else {
				o.affected = res.RowsAffected
			}
			chaosBaseline.outcomes = append(chaosBaseline.outcomes, o)
		}
	})
	if chaosBaseline.err != nil {
		t.Fatal(chaosBaseline.err)
	}
	return chaosBaseline.outcomes
}

// runChaosClass replays the workload on a fresh engine with arm()'s faults
// active and checks the differential contract statement by statement. It
// returns the number of cleanly failed statements, the number of degraded
// (catalog-fallback) compilations, and the engine for class-specific
// assertions. The engine is probed for liveness after the storm.
func runChaosClass(t *testing.T, opts engine.ExecOptions, arm func()) (faultErrs, degradedStmts int, fired map[faultinject.Point]int64, e *engine.Engine) {
	t.Helper()
	base := baselineOutcomes(t)
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	e, d := mkChaosEngine(t)
	arm() // arm only after the data load so the dataset matches the baseline
	for i, st := range d.Workload(chaosStmts, chaosSeed, true) {
		res, err := e.ExecWithContext(context.Background(), st.SQL, opts)
		b := base[i]
		if err != nil {
			if !st.IsQuery {
				t.Fatalf("stmt %d %q: update failed under faults (%v) — database state would fork", i, st.SQL, err)
			}
			faultErrs++ // clean statement-level failure: tolerated
			continue
		}
		if res.Prepare != nil && res.Prepare.Degraded {
			degradedStmts++
			if len(res.Prepare.FallbackTables) == 0 {
				t.Fatalf("stmt %d %q: Degraded set but FallbackTables empty", i, st.SQL)
			}
		}
		if b.failed {
			continue // baseline failed, nothing to compare
		}
		if !st.IsQuery {
			if res.RowsAffected != b.affected {
				t.Fatalf("stmt %d %q: affected %d, fault-free run affected %d", i, st.SQL, res.RowsAffected, b.affected)
			}
			continue
		}
		if b.countOnly {
			if len(res.Rows) != b.rows {
				t.Fatalf("stmt %d %q: %d rows, fault-free run %d", i, st.SQL, len(res.Rows), b.rows)
			}
			continue
		}
		if got := fingerprintRows(res); got != b.fp {
			t.Fatalf("stmt %d %q: rows diverged from the fault-free run\ngot:\n%s\nwant:\n%s", i, st.SQL, got, b.fp)
		}
	}
	// Snapshot fire counts, then disarm: the engine must answer again.
	fired = make(map[faultinject.Point]int64)
	for _, p := range faultinject.Points() {
		fired[p] = faultinject.Fired(p)
	}
	faultinject.Reset()
	if _, err := e.Exec(`SELECT COUNT(*) FROM car`); err != nil {
		t.Fatalf("engine unusable after chaos run: %v", err)
	}
	return faultErrs, degradedStmts, fired, e
}

// TestChaosStorageScanFaults injects page-read errors on a fixed schedule:
// affected statements must fail cleanly, the rest must match the baseline.
func TestChaosStorageScanFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos replay is slow")
	}
	errs, _, fired, _ := runChaosClass(t, engine.ExecOptions{}, func() {
		if err := faultinject.Arm(faultinject.StorageScan, faultinject.SeedSpec(chaosSeed, 7)); err != nil {
			t.Fatal(err)
		}
	})
	if fired[faultinject.StorageScan] == 0 {
		t.Fatal("storage.scan never fired — the probe schedule tested nothing")
	}
	if errs == 0 {
		t.Fatal("no statement failed although scan faults fired")
	}
}

// TestChaosSamplingDegradesNotFails is the paper's "QSS cannot be
// collected" contract: with only sampling-layer faults armed, every
// statement still compiles and runs (catalog fallback), results are
// identical to the fault-free run, and the degradation is visible in
// PrepareReport and the engine counters.
func TestChaosSamplingDegradesNotFails(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos replay is slow")
	}
	errs, degraded, _, e := runChaosClass(t, engine.ExecOptions{}, func() {
		if err := faultinject.Arm(faultinject.SamplingRows, faultinject.SeedSpec(chaosSeed, 2)); err != nil {
			t.Fatal(err)
		}
	})
	if errs != 0 {
		t.Fatalf("%d statements failed — sampling faults must degrade, never abort", errs)
	}
	if degraded == 0 {
		t.Fatal("no statement reported Degraded although sampling faults were armed")
	}
	if d := e.Degradation(); d.SamplingErrors == 0 || d.FallbackTables == 0 {
		t.Fatalf("degradation counters not bumped: %+v", d)
	}
}

// TestChaosWorkerPanics injects panics into morsel workers (executor and
// sampling pools). Panics during execution must surface as clean errors;
// panics during sampling must degrade the preparation; either way the
// worker pools drain and the engine survives.
func TestChaosWorkerPanics(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos replay is slow")
	}
	_, _, fired, _ := runChaosClass(t, engine.ExecOptions{}, func() {
		if err := faultinject.Arm(faultinject.WorkerPanic, faultinject.Spec{Every: 40, Offset: 11}); err != nil {
			t.Fatal(err)
		}
	})
	if fired[faultinject.WorkerPanic] == 0 {
		t.Fatal("executor.worker.panic never fired")
	}
}

// TestChaosLatencyWithDeadline arms per-morsel latency and gives every
// statement a short deadline, so cancellation races real in-flight work:
// statements must either finish with baseline results or return the
// context error from a morsel/table boundary.
func TestChaosLatencyWithDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos replay is slow")
	}
	errs, _, fired, _ := runChaosClass(t, engine.ExecOptions{Timeout: 4 * time.Millisecond}, func() {
		if err := faultinject.Arm(faultinject.MorselLatency, faultinject.Spec{Every: 1, Latency: time.Millisecond}); err != nil {
			t.Fatal(err)
		}
	})
	if fired[faultinject.MorselLatency] == 0 {
		t.Fatal("executor.morsel.latency never fired")
	}
	if errs == 0 {
		t.Fatal("no statement hit its deadline although every morsel slept")
	}
}

// TestChaosAllPointsArmed arms every registered fault point at once — the
// acceptance configuration: every statement either errors cleanly or
// matches the fault-free run.
func TestChaosAllPointsArmed(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos replay is slow")
	}
	_, _, fired, _ := runChaosClass(t, engine.ExecOptions{}, func() {
		for p, spec := range map[faultinject.Point]faultinject.Spec{
			faultinject.StorageScan:   {Every: 9, Offset: 4},
			faultinject.SamplingRows:  {Every: 3, Offset: 1},
			faultinject.WorkerPanic:   {Every: 60, Offset: 7},
			faultinject.MorselLatency: {Every: 25, Latency: 500 * time.Microsecond},
			faultinject.ArchiveSave:   {Every: 1},
			faultinject.ArchiveLoad:   {Every: 1},
		} {
			if err := faultinject.Arm(p, spec); err != nil {
				t.Fatal(err)
			}
		}
	})
	for _, p := range []faultinject.Point{faultinject.StorageScan, faultinject.SamplingRows} {
		if fired[p] == 0 {
			t.Fatalf("%s never fired under the all-armed schedule", p)
		}
	}
}

// TestChaosGovernPressure arms the govern.pressure fault, which shrinks a
// statement's effective memory budget to its current usage mid-flight —
// modelling a neighbour stealing the remaining memory. The contract: every
// statement completes, degrades (counted, catalog fallback), or fails with
// the typed govern.ErrMemoryBudget — never a panic, never unbounded growth —
// and every reservation drains back to the global pool.
func TestChaosGovernPressure(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos replay is slow")
	}
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)

	cfg := engine.Config{Parallelism: 4}
	cfg.JITS.Enabled = true
	cfg.JITS.SMax = 0.5
	cfg.JITS.SampleSize = 800
	cfg.JITS.Seed = 7
	// Roomy enough that fault-free statements fit comfortably — failures in
	// the storm then come from the injected pressure, not the baseline budget.
	cfg.JITS.MemBudgetBytes = 32 << 20
	cfg.Governor.GlobalMemBudgetBytes = 256 << 20
	e := engine.New(cfg)
	d, err := workload.Load(e, workload.Spec{Scale: 0.004, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Arm after the load so table building is undisturbed; every 7th
	// reservation growth then hits the pressure fault.
	if err := faultinject.Arm(faultinject.GovernPressure, faultinject.Spec{Every: 7}); err != nil {
		t.Fatal(err)
	}

	var okStmts, degradedStmts, typedFails int
	for i, st := range d.Queries(60, chaosSeed) {
		res, err := e.Exec(st.SQL)
		switch {
		case err == nil:
			if res.Prepare != nil && res.Prepare.Degraded {
				degradedStmts++
			} else {
				okStmts++
			}
		case errors.Is(err, govern.ErrMemoryBudget):
			typedFails++
		default:
			t.Fatalf("stmt %d %q: untyped failure under govern.pressure: %v", i, st.SQL, err)
		}
	}
	if fired := faultinject.Fired(faultinject.GovernPressure); fired == 0 {
		t.Fatal("govern.pressure never fired — the schedule tested nothing")
	}
	if typedFails == 0 {
		t.Fatal("no statement failed typed although budgets were shrunk mid-flight")
	}
	if okStmts+degradedStmts == 0 {
		t.Fatal("no statement survived the pressure storm")
	}
	t.Logf("govern.pressure: %d ok, %d degraded, %d typed failures", okStmts, degradedStmts, typedFails)

	// The storm must leak nothing and leave the engine usable.
	if used := e.Governor().Snapshot().GlobalMemUsed; used != 0 {
		t.Fatalf("global pool holds %d bytes after the storm", used)
	}
	faultinject.Reset()
	if _, err := e.Exec(`SELECT COUNT(*) FROM car`); err != nil {
		t.Fatalf("engine unusable after govern.pressure storm: %v", err)
	}
}

// TestChaosArchiveCorruption covers the persistence fault points: a save
// corrupted after checksumming, and a load corrupted at rest, must both be
// caught by the CRC and rejected — and a failed load must leave the
// engine's current archive untouched.
func TestChaosArchiveCorruption(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)

	e, d := mkChaosEngine(t)
	for _, st := range d.Queries(8, 5) {
		if _, err := e.Exec(st.SQL); err != nil {
			t.Fatal(err)
		}
	}
	var clean bytes.Buffer
	if err := e.SaveStatistics(&clean); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadStatistics(bytes.NewReader(clean.Bytes())); err != nil {
		t.Fatalf("clean round trip failed: %v", err)
	}

	// Torn persist: the payload is corrupted after its checksum was taken.
	if err := faultinject.Arm(faultinject.ArchiveSave, faultinject.Spec{Every: 1}); err != nil {
		t.Fatal(err)
	}
	var torn bytes.Buffer
	if err := e.SaveStatistics(&torn); err != nil {
		t.Fatalf("save itself must succeed (corruption is silent): %v", err)
	}
	faultinject.Disarm(faultinject.ArchiveSave)
	err := e.LoadStatistics(bytes.NewReader(torn.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("loading a torn archive: err = %v, want checksum mismatch", err)
	}

	// Corruption at rest: a clean file, flipped during the read path.
	if err := faultinject.Arm(faultinject.ArchiveLoad, faultinject.Spec{Every: 1}); err != nil {
		t.Fatal(err)
	}
	err = e.LoadStatistics(bytes.NewReader(clean.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("loading with read-path corruption: err = %v, want checksum mismatch", err)
	}
	faultinject.Disarm(faultinject.ArchiveLoad)

	// The rejected loads must not have clobbered the working archive.
	if _, err := e.Exec(`SELECT COUNT(*) FROM car WHERE make = 'Toyota'`); err != nil {
		t.Fatalf("engine unusable after rejected loads: %v", err)
	}
	if err := e.LoadStatistics(bytes.NewReader(clean.Bytes())); err != nil {
		t.Fatalf("clean load after rejections failed: %v", err)
	}
}
