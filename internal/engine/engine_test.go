package engine

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

// seedEngine creates an engine with the car/owner schema and correlated
// data (model determined by make) loaded via SQL.
func seedEngine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	mustExec(t, e, `CREATE TABLE car (id INT, ownerid INT, make STRING, model STRING, year INT, price FLOAT)`)
	mustExec(t, e, `CREATE TABLE owner (id INT, name STRING, city STRING, country STRING, salary FLOAT)`)
	mustExec(t, e, `CREATE INDEX ix_car_ownerid ON car (ownerid)`)
	mustExec(t, e, `CREATE INDEX ix_owner_id ON owner (id)`)

	pairs := [][2]string{
		{"Toyota", "Camry"}, {"Toyota", "Corolla"}, {"Honda", "Civic"},
		{"BMW", "X5"}, {"Toyota", "Camry"},
	}
	cities := [][2]string{{"Ottawa", "CA"}, {"Toronto", "CA"}, {"Boston", "US"}, {"Ottawa", "CA"}}
	var sb strings.Builder
	sb.WriteString("INSERT INTO owner VALUES ")
	for i := 0; i < 200; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		c := cities[i%len(cities)]
		fmt.Fprintf(&sb, "(%d, 'o%d', '%s', '%s', %d)", i, i, c[0], c[1], 30000+i*100)
	}
	mustExec(t, e, sb.String())
	sb.Reset()
	sb.WriteString("INSERT INTO car VALUES ")
	for i := 0; i < 1000; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		p := pairs[i%len(pairs)]
		fmt.Fprintf(&sb, "(%d, %d, '%s', '%s', %d, %d)", i, i%200, p[0], p[1], 1990+i%20, 10000+i*10)
	}
	mustExec(t, e, sb.String())
	return e
}

func mustExec(t testing.TB, e *Engine, sql string) *Result {
	t.Helper()
	res, err := e.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func TestDDLAndInsert(t *testing.T) {
	e := seedEngine(t, Config{})
	tbl, ok := e.DB().Table("car")
	if !ok || tbl.RowCount() != 1000 {
		t.Fatalf("car rows = %v", tbl.RowCount())
	}
	if _, err := e.Exec(`CREATE TABLE car (id INT)`); err == nil {
		t.Error("duplicate create must fail")
	}
	if _, err := e.Exec(`INSERT INTO ghost VALUES (1)`); err == nil {
		t.Error("insert into missing table must fail")
	}
	if _, err := e.Exec(`INSERT INTO car VALUES (1)`); err == nil {
		t.Error("arity mismatch must fail")
	}
	// Named-column insert with defaults as NULL.
	res := mustExec(t, e, `INSERT INTO car (id, make) VALUES (9999, 'Lada')`)
	if res.RowsAffected != 1 {
		t.Errorf("affected = %d", res.RowsAffected)
	}
	out := mustExec(t, e, `SELECT year FROM car WHERE id = 9999`)
	if len(out.Rows) != 1 || !out.Rows[0][0].IsNull() {
		t.Errorf("defaulted column = %v", out.Rows)
	}
}

func TestSelectEndToEnd(t *testing.T) {
	e := seedEngine(t, Config{})
	res := mustExec(t, e, `SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'`)
	if len(res.Rows) != 400 { // 2 of 5 pattern slots
		t.Errorf("rows = %d, want 400", len(res.Rows))
	}
	if res.Metrics.ExecSeconds <= 0 || res.Metrics.TotalSeconds < res.Metrics.ExecSeconds {
		t.Errorf("metrics = %+v", res.Metrics)
	}
	if !strings.Contains(res.Plan, "car") {
		t.Errorf("plan = %q", res.Plan)
	}
}

func TestUpdateDelete(t *testing.T) {
	e := seedEngine(t, Config{})
	res := mustExec(t, e, `UPDATE car SET price = 1 WHERE make = 'BMW'`)
	if res.RowsAffected != 200 {
		t.Errorf("updated = %d", res.RowsAffected)
	}
	check := mustExec(t, e, `SELECT COUNT(*) FROM car WHERE price = 1`)
	if check.Rows[0][0].Int() != 200 {
		t.Errorf("post-update count = %v", check.Rows[0][0])
	}
	res = mustExec(t, e, `DELETE FROM car WHERE make = 'BMW'`)
	if res.RowsAffected != 200 {
		t.Errorf("deleted = %d", res.RowsAffected)
	}
	tbl, _ := e.DB().Table("car")
	if tbl.RowCount() != 800 {
		t.Errorf("rows = %d", tbl.RowCount())
	}
	// UDI accumulated for the sensitivity analysis.
	if tbl.UDICounter().Total() < 400 {
		t.Errorf("UDI = %+v", tbl.UDICounter())
	}
	if _, err := e.Exec(`UPDATE car SET ghost = 1`); err == nil {
		t.Error("unknown column must fail")
	}
	if _, err := e.Exec(`DELETE FROM car WHERE ghost = 1`); err == nil {
		t.Error("unknown column must fail")
	}
}

func TestJoinQueryThroughEngine(t *testing.T) {
	e := seedEngine(t, Config{})
	res := mustExec(t, e, `SELECT o.name, c.model FROM car c, owner o
		WHERE c.ownerid = o.id AND o.city = 'Ottawa' AND c.make = 'Toyota'`)
	// Verify against a direct computation.
	want := mustExec(t, e, `SELECT COUNT(*) FROM car c, owner o
		WHERE c.ownerid = o.id AND o.city = 'Ottawa' AND c.make = 'Toyota'`)
	if int64(len(res.Rows)) != want.Rows[0][0].Int() {
		t.Errorf("rows = %d, count = %v", len(res.Rows), want.Rows[0][0])
	}
	if len(res.Rows) == 0 {
		t.Error("join produced nothing")
	}
}

func TestRunstatsAllImprovesEstimates(t *testing.T) {
	e := seedEngine(t, Config{})
	if err := e.RunstatsAll(); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Catalog().TableStats("car"); !ok {
		t.Fatal("no stats after RunstatsAll")
	}
	if _, ok := e.Catalog().TableStats("owner"); !ok {
		t.Fatal("no owner stats")
	}
}

func TestJITSEnabledCollectsAndHelps(t *testing.T) {
	cfg := Config{JITS: core.DefaultConfig()}
	cfg.JITS.ForceCollect = true
	e := seedEngine(t, cfg)
	res := mustExec(t, e, `SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'`)
	if res.Prepare == nil || res.Prepare.CollectedTables() != 1 {
		t.Fatalf("prepare = %+v", res.Prepare)
	}
	if res.Metrics.CompileUnits == 0 {
		t.Error("JITS collection must show up in compile units")
	}
	// The archive now holds materialized statistics.
	if e.JITS().Archive().Histograms() == 0 {
		t.Error("archive empty")
	}
}

func TestFeedbackLoopFillsHistory(t *testing.T) {
	e := seedEngine(t, Config{JITS: core.DefaultConfig()})
	mustExec(t, e, `SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'`)
	if e.History().Len() == 0 {
		t.Error("history empty after query with local predicates")
	}
}

func TestWorkloadStatsBaseline(t *testing.T) {
	e := seedEngine(t, Config{})
	sqls := []string{
		`SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'`,
		`SELECT id FROM owner WHERE city = 'Ottawa'`,
		`UPDATE car SET price = 2 WHERE id = 1`, // skipped: not a SELECT
	}
	if err := e.CollectWorkloadStats(sqls); err != nil {
		t.Fatal(err)
	}
	a := e.WorkloadStatsArchive()
	if a == nil || (a.Histograms() == 0 && a.MemoEntries() == 0) {
		t.Fatal("workload stats archive empty")
	}
	// The exact joint selectivity is available to the optimizer: compare
	// estimated rows to actual.
	res := mustExec(t, e, `SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'`)
	scanLine := ""
	for _, line := range strings.Split(res.Plan, "\n") {
		if strings.Contains(line, "car") {
			scanLine = line
		}
	}
	if scanLine == "" {
		t.Fatalf("plan = %q", res.Plan)
	}
	// rows=400 should appear (exact selectivity 0.4 × 1000).
	if !strings.Contains(scanLine, "rows=400") {
		t.Errorf("scan line = %q, want rows=400 from workload stats", scanLine)
	}
}

func TestWorkloadStatsGoStale(t *testing.T) {
	e := seedEngine(t, Config{})
	if err := e.CollectWorkloadStats([]string{`SELECT id FROM car WHERE make = 'Toyota'`}); err != nil {
		t.Fatal(err)
	}
	// Delete all Toyotas: the static archive still claims 60%.
	mustExec(t, e, `DELETE FROM car WHERE make = 'Toyota'`)
	res := mustExec(t, e, `SELECT id FROM car WHERE make = 'Toyota'`)
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !strings.Contains(res.Plan, "rows=600") {
		t.Errorf("plan = %q, want stale estimate rows=600", res.Plan)
	}
}

func TestMigrateStats(t *testing.T) {
	cfg := Config{JITS: core.DefaultConfig()}
	cfg.JITS.ForceCollect = true
	e := seedEngine(t, cfg)
	mustExec(t, e, `SELECT id FROM car WHERE year > 2000`)
	n := e.MigrateStats()
	if n == 0 {
		t.Fatal("nothing migrated")
	}
	ts, ok := e.Catalog().TableStats("car")
	if !ok || ts.Columns["year"] == nil || ts.Columns["year"].Hist == nil {
		t.Error("migration did not reach the catalog")
	}
}

func TestJITSBeatsNoStatsOnCorrelatedQuery(t *testing.T) {
	// The headline behaviour: with correlated predicates and no statistics,
	// execution work with JITS-collected stats must not exceed the default
	// plan's, and the estimates must be far better.
	runCase := func(jits bool) (execUnits float64, estRows string) {
		cfg := Config{}
		if jits {
			cfg.JITS = core.DefaultConfig()
			cfg.JITS.ForceCollect = true
		}
		e := seedEngine(t, cfg)
		res := mustExec(t, e, `SELECT o.name FROM car c, owner o
			WHERE c.ownerid = o.id AND c.make = 'Toyota' AND c.model = 'Camry' AND o.city = 'Ottawa'`)
		return res.Metrics.ExecUnits, res.Plan
	}
	unitsOff, _ := runCase(false)
	unitsOn, planOn := runCase(true)
	if unitsOn > unitsOff*1.5 {
		t.Errorf("JITS exec units %v much worse than default %v\n%s", unitsOn, unitsOff, planOn)
	}
}

func TestSelectUnknownTableFails(t *testing.T) {
	e := New(Config{})
	if _, err := e.Exec(`SELECT x FROM ghost`); err == nil {
		t.Error("unknown table must fail")
	}
	if _, err := e.Exec(`CREATE INDEX ix ON ghost (x)`); err == nil {
		t.Error("index on unknown table must fail")
	}
}

func TestClockAdvances(t *testing.T) {
	e := seedEngine(t, Config{})
	before := e.Now()
	mustExec(t, e, `SELECT id FROM car LIMIT 1`)
	if e.Now() <= before {
		t.Error("clock did not advance")
	}
}

func TestAggregatesThroughEngine(t *testing.T) {
	e := seedEngine(t, Config{})
	res := mustExec(t, e, `SELECT make, COUNT(*) AS n, AVG(price) FROM car GROUP BY make ORDER BY n DESC`)
	if len(res.Rows) != 3 { // Toyota, Honda, BMW
		t.Fatalf("groups = %d", len(res.Rows))
	}
	if res.Rows[0][0].Str() != "Toyota" || res.Rows[0][1].Int() != 600 {
		t.Errorf("top group = %v", res.Rows[0])
	}
	avg := res.Rows[0][2].Float()
	if math.IsNaN(avg) || avg <= 0 {
		t.Errorf("avg = %v", avg)
	}
}

func TestNullHandlingEndToEnd(t *testing.T) {
	e := New(Config{})
	mustExec(t, e, `CREATE TABLE t (a INT, b STRING)`)
	mustExec(t, e, `INSERT INTO t VALUES (1, 'x'), (NULL, 'y'), (3, NULL)`)
	res := mustExec(t, e, `SELECT a FROM t WHERE a > 0`)
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d (NULL must not match)", len(res.Rows))
	}
	res = mustExec(t, e, `SELECT COUNT(*), COUNT(a), COUNT(b) FROM t`)
	r := res.Rows[0]
	if r[0].Int() != 3 || r[1].Int() != 2 || r[2].Int() != 2 {
		t.Errorf("counts = %v", r)
	}
}

func BenchmarkEngineSelectJITS(b *testing.B) {
	cfg := Config{JITS: core.DefaultConfig()}
	e := seedEngine(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec(`SELECT o.name FROM car c, owner o WHERE c.ownerid = o.id AND c.make = 'Toyota' AND c.model = 'Camry'`); err != nil {
			b.Fatal(err)
		}
	}
}
