package engine

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/qgm"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// coerce adapts a literal to the column kind where SQL does implicitly:
// integer literals store into FLOAT columns as floats. Anything else is
// left for storage-level validation to accept or reject.
func coerce(d value.Datum, kind value.Kind) value.Datum {
	if kind == value.KindFloat && d.Kind() == value.KindInt {
		return value.NewFloat(float64(d.Int()))
	}
	return d
}

// execInsert appends rows; the workload's update stream flows through here
// and feeds the UDI counters the sensitivity analysis watches.
func (e *Engine) execInsert(stmt *sqlparser.InsertStmt) (*Result, error) {
	tbl, ok := e.db.Table(stmt.Table)
	if !ok {
		return nil, fmt.Errorf("engine: table %q does not exist", stmt.Table)
	}
	schema := tbl.Schema()

	var ordinals []int
	if len(stmt.Columns) > 0 {
		ordinals = make([]int, len(stmt.Columns))
		for i, c := range stmt.Columns {
			o, ok := schema.Ordinal(c)
			if !ok {
				return nil, fmt.Errorf("engine: table %s has no column %q", stmt.Table, c)
			}
			ordinals[i] = o
		}
	}

	var meter costmodel.Meter
	rows := make([][]value.Datum, 0, len(stmt.Rows))
	for _, vals := range stmt.Rows {
		row := make([]value.Datum, schema.NumColumns())
		if ordinals == nil {
			if len(vals) != schema.NumColumns() {
				return nil, fmt.Errorf("engine: INSERT has %d values, table %s has %d columns",
					len(vals), stmt.Table, schema.NumColumns())
			}
			for i, v := range vals {
				row[i] = coerce(v, schema.Column(i).Kind)
			}
		} else {
			if len(vals) != len(ordinals) {
				return nil, fmt.Errorf("engine: INSERT has %d values for %d columns", len(vals), len(ordinals))
			}
			for i, v := range vals {
				row[ordinals[i]] = coerce(v, schema.Column(ordinals[i]).Kind)
			}
		}
		rows = append(rows, row)
	}
	if err := tbl.InsertBatch(rows); err != nil {
		return nil, err
	}
	meter.Add(e.weights.RowOut * float64(len(rows)))
	return e.dmlResult(len(rows), &meter), nil
}

// resolveWhere compiles a DML WHERE conjunction against one table.
func resolveWhere(tbl *storage.Table, where []sqlparser.Expr) (func(row []value.Datum) bool, error) {
	preds, err := qgm.BuildLocalPredicates(tbl.Schema(), where)
	if err != nil {
		return nil, err
	}
	return func(row []value.Datum) bool {
		for _, p := range preds {
			if !p.Matches(row) {
				return false
			}
		}
		return true
	}, nil
}

func (e *Engine) execUpdate(stmt *sqlparser.UpdateStmt) (*Result, error) {
	tbl, ok := e.db.Table(stmt.Table)
	if !ok {
		return nil, fmt.Errorf("engine: table %q does not exist", stmt.Table)
	}
	schema := tbl.Schema()
	type setOp struct {
		ord int
		val value.Datum
	}
	sets := make([]setOp, len(stmt.Assignments))
	for i, a := range stmt.Assignments {
		o, ok := schema.Ordinal(a.Column)
		if !ok {
			return nil, fmt.Errorf("engine: table %s has no column %q", stmt.Table, a.Column)
		}
		sets[i] = setOp{ord: o, val: coerce(a.Value, schema.Column(o).Kind)}
	}
	match, err := resolveWhere(tbl, stmt.Where)
	if err != nil {
		return nil, err
	}
	var meter costmodel.Meter
	meter.Add(e.weights.SeqRow * float64(tbl.RowCount()))
	n, err := tbl.UpdateWhere(match, func(row []value.Datum) {
		for _, s := range sets {
			row[s.ord] = s.val
		}
	})
	if err != nil {
		return nil, err
	}
	return e.dmlResult(n, &meter), nil
}

func (e *Engine) execDelete(stmt *sqlparser.DeleteStmt) (*Result, error) {
	tbl, ok := e.db.Table(stmt.Table)
	if !ok {
		return nil, fmt.Errorf("engine: table %q does not exist", stmt.Table)
	}
	match, err := resolveWhere(tbl, stmt.Where)
	if err != nil {
		return nil, err
	}
	var meter costmodel.Meter
	meter.Add(e.weights.SeqRow * float64(tbl.RowCount()))
	n := tbl.DeleteWhere(match)
	return e.dmlResult(n, &meter), nil
}

func (e *Engine) execCreateTable(stmt *sqlparser.CreateTableStmt) (*Result, error) {
	cols := make([]storage.Column, len(stmt.Columns))
	for i, c := range stmt.Columns {
		cols[i] = storage.Column{Name: c.Name, Kind: c.Kind}
	}
	schema, err := storage.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	if _, err := e.db.CreateTable(stmt.Name, schema); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) execCreateIndex(stmt *sqlparser.CreateIndexStmt) (*Result, error) {
	tbl, ok := e.db.Table(stmt.Table)
	if !ok {
		return nil, fmt.Errorf("engine: table %q does not exist", stmt.Table)
	}
	if _, err := e.indexes.Create(stmt.Name, tbl, stmt.Column); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (e *Engine) dmlResult(n int, meter *costmodel.Meter) *Result {
	return &Result{RowsAffected: n, Metrics: buildMetrics(nil, meter)}
}
