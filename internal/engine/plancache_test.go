package engine

import (
	"fmt"

	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

// cacheEngine is seedEngine with the plan cache on, JITS enabled with a
// small sample so compilation is cheap but the full pipeline runs.
func cacheEngine(t testing.TB) *Engine {
	t.Helper()
	cfg := Config{PlanCacheSize: 64}
	cfg.JITS = core.DefaultConfig()
	cfg.JITS.SampleSize = 200
	return seedEngine(t, cfg)
}

// TestPlanCacheEndToEnd: the second execution of an identical SELECT reuses
// the compiled plan — same rows, same plan text, zero compile cost — and
// the cache counters account for it.
func TestPlanCacheEndToEnd(t *testing.T) {
	e := cacheEngine(t)
	const q = `SELECT c.id, c.price FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Ottawa'`

	cold, err := e.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.PlanCacheHit {
		t.Fatal("first execution reported a cache hit")
	}
	warm, err := e.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.PlanCacheHit {
		t.Fatal("second execution missed the plan cache")
	}
	if warm.Metrics.CompileSeconds != 0 || warm.Metrics.CompileUnits != 0 {
		t.Fatalf("cached execution metered compile work: %+v", warm.Metrics)
	}
	if len(warm.Rows) != len(cold.Rows) {
		t.Fatalf("cached run returned %d rows, cold run %d", len(warm.Rows), len(cold.Rows))
	}
	for i := range cold.Rows {
		for j := range cold.Rows[i] {
			if !cold.Rows[i][j].Equal(warm.Rows[i][j]) {
				t.Fatalf("row %d col %d: %v vs %v", i, j, cold.Rows[i][j], warm.Rows[i][j])
			}
		}
	}
	if cold.Plan != warm.Plan {
		t.Fatalf("plans diverged:\ncold:\n%s\nwarm:\n%s", cold.Plan, warm.Plan)
	}
	st := e.PlanCache().Stats()
	if st.Hits != 1 || st.Misses < 1 {
		t.Fatalf("cache stats = %+v", st)
	}
}

// TestPlanCacheDMLInvalidation: DML bumps the archive epoch, so a plan
// compiled before the update is never reused after it — and the re-compiled
// plan sees the new rows. SHOW METRICS must expose the invalidation.
func TestPlanCacheDMLInvalidation(t *testing.T) {
	metrics.Enable()
	defer metrics.Disable()
	e := cacheEngine(t)
	const q = `SELECT c.id FROM car c WHERE c.id = 777000`

	res, err := e.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("canary id already present: %d rows", len(res.Rows))
	}
	if res, err = e.Exec(q); err != nil {
		t.Fatal(err)
	}
	if !res.PlanCacheHit {
		t.Fatal("repeat before DML should hit")
	}

	epoch := e.ArchiveEpoch()
	if _, err = e.Exec(`INSERT INTO car VALUES (777000, 1, 'Toyota', 'Camry', 2001, 9000.0)`); err != nil {
		t.Fatal(err)
	}
	if e.ArchiveEpoch() != epoch+1 {
		t.Fatalf("INSERT did not bump the archive epoch: %d -> %d", epoch, e.ArchiveEpoch())
	}

	res, err = e.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanCacheHit {
		t.Fatal("stale plan reused after DML")
	}
	if len(res.Rows) != 1 {
		t.Fatalf("recompiled query missed the inserted row: %d rows", len(res.Rows))
	}
	if st := e.PlanCache().Stats(); st.Invalidations < 1 {
		t.Fatalf("no invalidation recorded: %+v", st)
	}

	// The acceptance surface: all four plan-cache series in SHOW METRICS.
	mres, err := e.Exec(`SHOW METRICS`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"plan_cache_hits_total":          false,
		"plan_cache_misses_total":        false,
		"plan_cache_evictions_total":     false,
		"plan_cache_invalidations_total": false,
	}
	for _, row := range mres.Rows {
		name := row[0].Str()
		if _, ok := want[name]; ok {
			want[name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("%s missing from SHOW METRICS", name)
		}
	}
}

// TestPlanCacheNormalizationSharing: statements differing only in
// whitespace and keyword/identifier case share one cache entry; statements
// differing semantically (literal case included — strings are compared
// byte-wise) never do.
func TestPlanCacheNormalizationSharing(t *testing.T) {
	e := cacheEngine(t)
	if _, err := e.Exec(`SELECT id FROM car WHERE make = 'Toyota'`); err != nil {
		t.Fatal(err)
	}
	res, err := e.Exec("select   ID   from CAR\n\twhere MAKE = 'Toyota';")
	if err != nil {
		t.Fatal(err)
	}
	if !res.PlanCacheHit {
		t.Fatal("case/whitespace variant did not share the cache entry")
	}
	// Same shape, different string literal case: semantically different,
	// must compile fresh and return different rows.
	res2, err := e.Exec(`SELECT id FROM car WHERE make = 'toyota'`)
	if err != nil {
		t.Fatal(err)
	}
	if res2.PlanCacheHit {
		t.Fatal("'toyota' collided with the 'Toyota' entry")
	}
	if len(res2.Rows) == len(res.Rows) && len(res.Rows) > 0 {
		t.Fatalf("literal case ignored: %d rows for both spellings", len(res.Rows))
	}
	// Different integer literal: distinct entry as well.
	if _, err := e.Exec(`SELECT id FROM car WHERE year > 1990`); err != nil {
		t.Fatal(err)
	}
	res3, err := e.Exec(`SELECT id FROM car WHERE year > 1995`)
	if err != nil {
		t.Fatal(err)
	}
	if res3.PlanCacheHit {
		t.Fatal("different literal hit the cache")
	}
}

// TestPlanCacheDisabled: PlanCacheSize 0 turns the cache off entirely.
func TestPlanCacheDisabled(t *testing.T) {
	e := seedEngine(t, Config{})
	const q = `SELECT id FROM car WHERE make = 'Toyota'`
	for i := 0; i < 3; i++ {
		res, err := e.Exec(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.PlanCacheHit {
			t.Fatalf("run %d: hit with the cache disabled", i)
		}
	}
	if n := e.PlanCache().Len(); n != 0 {
		t.Fatalf("disabled cache holds %d entries", n)
	}
	if st := e.PlanCache().Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("disabled cache counted traffic: %+v", st)
	}
}

// TestPlanCacheSemiJoinNotCached: IN-subquery statements fold the executed
// inner result into the outer plan — caching one would freeze data, not
// shape — so they must bypass the cache.
func TestPlanCacheSemiJoinNotCached(t *testing.T) {
	e := cacheEngine(t)
	const q = `SELECT c.id FROM car c WHERE c.ownerid IN (SELECT o.id FROM owner o WHERE o.city = 'Ottawa')`
	for i := 0; i < 2; i++ {
		res, err := e.Exec(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.PlanCacheHit {
			t.Fatalf("run %d: semi-join statement served from plan cache", i)
		}
	}
}

// TestPlanCacheExplainNotCached: EXPLAIN and EXPLAIN ANALYZE never populate
// or consume the cache — their Result shape is the plan, not rows.
func TestPlanCacheExplainNotCached(t *testing.T) {
	e := cacheEngine(t)
	const q = `SELECT id FROM car WHERE make = 'Toyota'`
	if _, err := e.Exec("EXPLAIN " + q); err != nil {
		t.Fatal(err)
	}
	if n := e.PlanCache().Len(); n != 0 {
		t.Fatalf("EXPLAIN populated the cache: %d entries", n)
	}
	if _, err := e.Exec(q); err != nil {
		t.Fatal(err)
	}
	res, err := e.Exec("EXPLAIN " + q)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanCacheHit {
		t.Fatal("EXPLAIN consumed a cached plan")
	}
}

// TestPlanCacheRunstatsInvalidation: RUNSTATS rebuilds catalog statistics,
// so cached plans must not survive it.
func TestPlanCacheRunstatsInvalidation(t *testing.T) {
	e := cacheEngine(t)
	const q = `SELECT id FROM car WHERE make = 'Honda'`
	for i := 0; i < 2; i++ {
		if _, err := e.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RunstatsAll(); err != nil {
		t.Fatal(err)
	}
	res, err := e.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanCacheHit {
		t.Fatal("plan survived RUNSTATS")
	}
}

// TestPlanCacheConcurrentSharedEntry: many goroutines executing the same
// cached statement concurrently (run under -race) must all see identical
// results — cached entries are executed shared, never copied.
func TestPlanCacheConcurrentSharedEntry(t *testing.T) {
	e := cacheEngine(t)
	const q = `SELECT c.id, c.price FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Ottawa'`
	base, err := e.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func() {
			res, err := e.Exec(q)
			if err != nil {
				errs <- err
				return
			}
			if len(res.Rows) != len(base.Rows) {
				errs <- fmt.Errorf("got %d rows, want %d", len(res.Rows), len(base.Rows))
				return
			}
			errs <- nil
		}()
	}
	for g := 0; g < 16; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if st := e.PlanCache().Stats(); st.Hits < 10 {
		t.Fatalf("expected mostly hits across 16 concurrent repeats: %+v", st)
	}
}

// TestPlanCacheBatchInsertInvalidation pins the batch flavor of DML
// invalidation: a multi-row INSERT goes through storage.InsertBatch (one
// version bump for the whole batch) yet still advances the archive epoch by
// exactly one statement, invalidating cached plans, and the recompiled
// query sees every batched row.
func TestPlanCacheBatchInsertInvalidation(t *testing.T) {
	e := cacheEngine(t)
	const q = `SELECT c.id FROM car c WHERE c.id >= 888000 AND c.id <= 888004`

	res, err := e.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("canary range already populated: %d rows", len(res.Rows))
	}
	if res, err = e.Exec(q); err != nil {
		t.Fatal(err)
	}
	if !res.PlanCacheHit {
		t.Fatal("repeat before DML should hit")
	}

	epoch := e.ArchiveEpoch()
	ins, err := e.Exec(`INSERT INTO car VALUES
		(888000, 1, 'Toyota', 'Camry', 2001, 9000.0),
		(888001, 1, 'Toyota', 'Camry', 2002, 9100.0),
		(888002, 1, 'Honda', 'Civic', 2003, 9200.0),
		(888003, 1, 'Honda', 'Civic', 2004, 9300.0),
		(888004, 1, 'Mazda', 'Miata', 2005, 9400.0)`)
	if err != nil {
		t.Fatal(err)
	}
	if ins.RowsAffected != 5 {
		t.Fatalf("batch INSERT affected %d rows, want 5", ins.RowsAffected)
	}
	if e.ArchiveEpoch() != epoch+1 {
		t.Fatalf("batch INSERT moved the epoch %d -> %d, want exactly +1 (one statement, one bump)",
			epoch, e.ArchiveEpoch())
	}

	res, err = e.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanCacheHit {
		t.Fatal("stale plan reused after batch INSERT")
	}
	if len(res.Rows) != 5 {
		t.Fatalf("recompiled query saw %d of the 5 batched rows", len(res.Rows))
	}
}
