package engine

import (
	"sync"
	"testing"

	"repro/internal/core"
)

// TestConcurrentQueries runs read-only queries from many goroutines against
// one engine with JITS enabled: results must stay correct and no data race
// may fire (run under -race in CI).
func TestConcurrentQueries(t *testing.T) {
	e := seedEngine(t, Config{JITS: core.DefaultConfig()})
	queries := []string{
		`SELECT COUNT(*) FROM car WHERE make = 'Toyota'`,
		`SELECT COUNT(*) FROM owner WHERE city = 'Ottawa'`,
		`SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Boston' LIMIT 5`,
		`SELECT make, COUNT(*) FROM car GROUP BY make`,
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := e.Exec(queries[(w+i)%len(queries)]); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Counting queries must still be exact afterwards.
	res := mustExec(t, e, `SELECT COUNT(*) FROM car WHERE make = 'Toyota'`)
	if res.Rows[0][0].Int() != 600 {
		t.Errorf("count = %v, want 600", res.Rows[0][0])
	}
}

func TestAutoMigration(t *testing.T) {
	cfg := Config{JITS: core.DefaultConfig(), MigrateEvery: 3}
	cfg.JITS.ForceCollect = true
	e := seedEngine(t, cfg)
	for i := 0; i < 2; i++ {
		mustExec(t, e, `SELECT id FROM car WHERE year > 2000`)
	}
	if ts, ok := e.Catalog().TableStats("car"); ok && ts.Columns["year"] != nil && ts.Columns["year"].Hist != nil {
		t.Fatal("migration ran before the interval elapsed")
	}
	mustExec(t, e, `SELECT id FROM car WHERE year > 2000`) // third SELECT triggers it
	ts, ok := e.Catalog().TableStats("car")
	if !ok || ts.Columns["year"] == nil || ts.Columns["year"].Hist == nil {
		t.Fatal("auto-migration did not populate the catalog")
	}
}
