package engine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestConcurrentQueries runs read-only queries from many goroutines against
// one engine with JITS enabled: results must stay correct and no data race
// may fire (run under -race in CI).
func TestConcurrentQueries(t *testing.T) {
	e := seedEngine(t, Config{JITS: core.DefaultConfig()})
	queries := []string{
		`SELECT COUNT(*) FROM car WHERE make = 'Toyota'`,
		`SELECT COUNT(*) FROM owner WHERE city = 'Ottawa'`,
		`SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Boston' LIMIT 5`,
		`SELECT make, COUNT(*) FROM car GROUP BY make`,
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := e.Exec(queries[(w+i)%len(queries)]); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Counting queries must still be exact afterwards.
	res := mustExec(t, e, `SELECT COUNT(*) FROM car WHERE make = 'Toyota'`)
	if res.Rows[0][0].Int() != 600 {
		t.Errorf("count = %v, want 600", res.Rows[0][0])
	}
}

// TestConcurrentParallelQueriesAndDML stresses the morsel-driven operators
// under -race: many client goroutines issue intra-query-parallel SELECTs
// (each spawning its own worker pool over shared tables and a shared meter)
// while writers concurrently insert, update and delete rows. Results may
// reflect any interleaving of the DML, but counts must stay within the
// bounds the writers can produce, and nothing may race or crash.
func TestConcurrentParallelQueriesAndDML(t *testing.T) {
	cfg := Config{JITS: core.DefaultConfig(), Parallelism: 4}
	cfg.JITS.SampleSize = 200
	e := seedEngine(t, cfg)
	queries := []string{
		`SELECT COUNT(*) FROM car WHERE make = 'Toyota'`,
		`SELECT make, COUNT(*), SUM(price) FROM car GROUP BY make ORDER BY make`,
		`SELECT c.id, o.city FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Ottawa' ORDER BY c.id LIMIT 10`,
		`SELECT COUNT(*) FROM car c, owner o WHERE c.price = o.salary`,
		`SELECT DISTINCT year FROM car WHERE year > 1995 ORDER BY year`,
	}
	var wg sync.WaitGroup
	errs := make(chan error, 128)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := e.ExecWith(queries[(w+i)%len(queries)], ExecOptions{Parallelism: 2 + w%3}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Writers: net row count stays in [1000, 1000+2*20] — inserts add two
	// rows each, the delete removes at most what the inserts added.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				id := 10000 + w*100 + i
				stmts := []string{
					fmt.Sprintf(`INSERT INTO car VALUES (%d, %d, 'Kia', 'Rio', 2020, 9000), (%d, %d, 'Kia', 'Rio', 2021, 9100)`,
						id, id%200, id+50, id%200),
					fmt.Sprintf(`UPDATE car SET price = 9500 WHERE id = %d`, id),
					fmt.Sprintf(`DELETE FROM car WHERE id = %d`, id+50),
				}
				for _, s := range stmts {
					if _, err := e.Exec(s); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res := mustExec(t, e, `SELECT COUNT(*) FROM car`)
	if n := res.Rows[0][0].Int(); n < 1000 || n > 1040 {
		t.Errorf("car count after DML = %d, want within [1000, 1040]", n)
	}
	res = mustExec(t, e, `SELECT COUNT(*) FROM car WHERE make = 'Toyota'`)
	if res.Rows[0][0].Int() != 600 {
		t.Errorf("Toyota count = %v, want 600", res.Rows[0][0])
	}
}

func TestAutoMigration(t *testing.T) {
	cfg := Config{JITS: core.DefaultConfig(), MigrateEvery: 3}
	cfg.JITS.ForceCollect = true
	e := seedEngine(t, cfg)
	for i := 0; i < 2; i++ {
		mustExec(t, e, `SELECT id FROM car WHERE year > 2000`)
	}
	if ts, ok := e.Catalog().TableStats("car"); ok && ts.Columns["year"] != nil && ts.Columns["year"].Hist != nil {
		t.Fatal("migration ran before the interval elapsed")
	}
	mustExec(t, e, `SELECT id FROM car WHERE year > 2000`) // third SELECT triggers it
	ts, ok := e.Catalog().TableStats("car")
	if !ok || ts.Columns["year"] == nil || ts.Columns["year"].Hist == nil {
		t.Fatal("auto-migration did not populate the catalog")
	}
}
