package engine

import (
	"fmt"
	"time"

	"repro/internal/accuracy"
	"repro/internal/metrics"
	"repro/internal/value"
)

// This file implements the SQL introspection statements — SHOW STATS, SHOW
// QUERIES [LAST n], SHOW METRICS, SHOW ACCURACY [FOR t], SHOW DRIFT and
// EXPLAIN HISTORY <qid>. They run through the ordinary Exec path and return
// ordinary result sets, so the differential and chaos harnesses can replay
// them like any other statement.

// execShowStats lists the QSS archive's grid histograms: shape (dimensions,
// buckets), maximum-entropy merge count, staleness in logical ticks relative
// to the statement's own timestamp, and the feedback loop's last EWMA error
// factor attributed to the statistic (NULL when no feedback used it yet).
func (e *Engine) execShowStats(ts int64) (*Result, error) {
	cols := []string{"stat", "table", "columns", "dims", "buckets", "merges", "last_used", "updated_at", "staleness", "error_factor"}
	snaps := e.jits.Archive().Snapshot()
	rows := make([][]value.Datum, 0, len(snaps))
	for _, s := range snaps {
		colList := ""
		for i, c := range s.Columns {
			if i > 0 {
				colList += ","
			}
			colList += c
		}
		// Staleness counts ticks since the histogram last absorbed a merge;
		// a histogram restored from disk (UpdatedAt 0) is as stale as its
		// last optimizer use suggests.
		ref := s.UpdatedAt
		if ref == 0 {
			ref = s.LastUsed
		}
		staleness := ts - ref
		if staleness < 0 {
			staleness = 0
		}
		ef := value.Null
		if f, ok := e.history.LastErrorFactorFor(s.Key); ok {
			ef = value.NewFloat(f)
		}
		rows = append(rows, []value.Datum{
			value.NewString(s.Key),
			value.NewString(s.Table),
			value.NewString(colList),
			value.NewInt(int64(s.Dims)),
			value.NewInt(int64(s.Buckets)),
			value.NewInt(int64(s.Merges)),
			value.NewInt(s.LastUsed),
			value.NewInt(s.UpdatedAt),
			value.NewInt(staleness),
			ef,
		})
	}
	return &Result{Columns: cols, Rows: rows}, nil
}

// execShowQueries renders the flight recorder's retained records, oldest
// first. last ≤ 0 returns everything in the ring.
func (e *Engine) execShowQueries(last int) (*Result, error) {
	cols := []string{"qid", "kind", "sql", "rows", "wall_ms", "compile_s", "exec_s",
		"worst_qerror", "sampled_tables", "archive_hits", "archive_misses", "degraded", "reopts", "error", "epoch"}
	recs := e.recorder.Last(last)
	rows := make([][]value.Datum, 0, len(recs))
	for _, r := range recs {
		sampled := ""
		for _, t := range r.Tables {
			if !t.Collected {
				continue
			}
			if sampled != "" {
				sampled += ","
			}
			sampled += t.Table
		}
		degraded := int64(0)
		if r.Degraded {
			degraded = 1
		}
		rows = append(rows, []value.Datum{
			value.NewInt(r.QID),
			value.NewString(r.Kind),
			value.NewString(r.SQL),
			value.NewInt(int64(r.Rows)),
			value.NewFloat(float64(r.Wall) / float64(time.Millisecond)),
			value.NewFloat(r.CompileSeconds),
			value.NewFloat(r.ExecSeconds),
			value.NewFloat(r.WorstQError),
			value.NewString(sampled),
			value.NewInt(int64(r.ArchiveHits)),
			value.NewInt(int64(r.ArchiveMisses)),
			value.NewInt(degraded),
			value.NewInt(int64(r.Reopts)),
			value.NewString(r.Err),
			value.NewInt(int64(r.ArchiveEpoch)),
		})
	}
	return &Result{Columns: cols, Rows: rows}, nil
}

// execShowMetrics snapshots the process-wide metrics registry as rows —
// counters and gauges one row each, histograms as their _count and _sum
// series. The registry must be enabled for values to be non-zero, exactly
// as with the /metrics exposition.
func (e *Engine) execShowMetrics() (*Result, error) {
	cols := []string{"name", "label", "value"}
	samples := metrics.Samples()
	rows := make([][]value.Datum, 0, len(samples))
	for _, s := range samples {
		rows = append(rows, []value.Datum{
			value.NewString(s.Name),
			value.NewString(s.Label),
			value.NewFloat(s.Value),
		})
	}
	return &Result{Columns: cols, Rows: rows}, nil
}

// accuracyRows renders ledger snapshot rows for SHOW ACCURACY / SHOW DRIFT.
// Staleness-style ages (merge_age, churn) are relative to the statement's
// own timestamp, matching SHOW STATS.
func accuracyRows(ts int64, snaps []accuracy.StatAccuracy) [][]value.Datum {
	rows := make([][]value.Datum, 0, len(snaps))
	for _, s := range snaps {
		age := ts - s.LastMerge
		if age < 0 {
			age = 0
		}
		driftedAt := value.Null
		if s.DriftedAt > 0 {
			driftedAt = value.NewInt(s.DriftedAt)
		}
		rows = append(rows, []value.Datum{
			value.NewString(s.Key),
			value.NewString(s.Table),
			value.NewString(s.State),
			value.NewInt(int64(s.Observations)),
			value.NewFloat(s.EWMAQError),
			value.NewFloat(s.CUSUM),
			value.NewInt(s.ChurnSinceMerge),
			value.NewInt(age),
			value.NewInt(int64(s.Merges)),
			value.NewInt(s.LastObserved),
			driftedAt,
		})
	}
	return rows
}

var accuracyCols = []string{"stat", "table", "state", "observations", "ewma_qerror",
	"cusum", "churn_rows", "merge_age", "merges", "last_observed", "drifted_at"}

// execShowAccuracy lists the accuracy ledger: one row per tracked statistic
// with its freshness state, decayed q-error, drift evidence and churn.
// table filters to one table's statistics; empty lists all.
func (e *Engine) execShowAccuracy(ts int64, table string) (*Result, error) {
	return &Result{Columns: accuracyCols, Rows: accuracyRows(ts, e.accuracy.Snapshot(table))}, nil
}

// execShowDrift lists only the statistics currently in the drifted state —
// the operator's "what went stale" view.
func (e *Engine) execShowDrift(ts int64) (*Result, error) {
	return &Result{Columns: accuracyCols, Rows: accuracyRows(ts, e.accuracy.Drifted())}, nil
}

// execExplainHistory replays the flight-recorded plan of statement qid with
// the actuals captured when it ran — the post-hoc EXPLAIN ANALYZE.
func (e *Engine) execExplainHistory(qid int64) (*Result, error) {
	rec, ok := e.recorder.Get(qid)
	if !ok {
		return nil, fmt.Errorf("engine: no flight record for statement q%d (recorder disabled, or the ring wrapped past it)", qid)
	}
	if rec.Plan == "" {
		return nil, fmt.Errorf("engine: statement q%d (%s) recorded no plan", qid, rec.Kind)
	}
	return &Result{
		Columns: []string{"plan"},
		Rows:    planRows(rec.Plan),
		Plan:    rec.Plan,
	}, nil
}
