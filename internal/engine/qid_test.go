package engine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestShowQueriesQIDsUniqueMonotone: under concurrent statements, SHOW
// QUERIES must list qids unique and strictly increasing. The flight
// recorder's ring is commit-ordered — a slow statement with a small qid can
// commit after a faster later one — so the introspection layer sorts by
// qid; this pins that contract.
func TestShowQueriesQIDsUniqueMonotone(t *testing.T) {
	cfg := Config{FlightRecorderCapacity: 512, PlanCacheSize: 64}
	cfg.JITS = core.DefaultConfig()
	cfg.JITS.SampleSize = 200
	e := seedEngine(t, cfg)
	e.Recorder().Reset() // drop the seeding statements; observe only ours

	queries := []string{
		`SELECT id FROM car WHERE make = 'Toyota'`,
		`SELECT c.id, c.price FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Ottawa'`,
		`SELECT id FROM owner WHERE city = 'Boston'`,
		`SELECT id FROM car WHERE year > 1995`,
	}
	const goroutines = 8
	const perG = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := e.Exec(queries[(g+i)%len(queries)]); err != nil {
					errs <- fmt.Errorf("goroutine %d: %w", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	res, err := e.Exec(`SHOW QUERIES LAST 500`)
	if err != nil {
		t.Fatal(err)
	}
	// SHOW QUERIES itself is not yet committed when it renders, so exactly
	// the workload statements appear.
	if len(res.Rows) != goroutines*perG {
		t.Fatalf("SHOW QUERIES returned %d rows, want %d", len(res.Rows), goroutines*perG)
	}
	seen := make(map[int64]bool, len(res.Rows))
	prev := int64(-1)
	for i, row := range res.Rows {
		qid := row[0].Int()
		if seen[qid] {
			t.Fatalf("row %d: duplicate qid %d", i, qid)
		}
		seen[qid] = true
		if qid <= prev {
			t.Fatalf("row %d: qid %d not strictly increasing (prev %d)", i, qid, prev)
		}
		prev = qid
	}
}
