package engine

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestExplainCompilesWithoutExecuting(t *testing.T) {
	e := seedEngine(t, Config{})
	res := mustExec(t, e, `EXPLAIN SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Ottawa'`)
	if len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no plan rows")
	}
	joined := res.Plan
	for _, want := range []string{"Join", "car", "owner"} {
		if !strings.Contains(joined, want) {
			t.Errorf("plan missing %q:\n%s", want, joined)
		}
	}
	if res.Metrics.ExecSeconds != 0 {
		t.Errorf("EXPLAIN must not execute: exec = %v", res.Metrics.ExecSeconds)
	}
	if res.Metrics.CompileSeconds <= 0 {
		t.Errorf("EXPLAIN must charge compilation: %v", res.Metrics.CompileSeconds)
	}
}

func TestExplainRunsJITSCollection(t *testing.T) {
	cfg := Config{JITS: core.DefaultConfig()}
	cfg.JITS.ForceCollect = true
	e := seedEngine(t, cfg)
	res := mustExec(t, e, `EXPLAIN SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'`)
	if res.Prepare == nil || res.Prepare.CollectedTables() != 1 {
		t.Fatalf("prepare = %+v", res.Prepare)
	}
	// The plan must reflect the collected joint selectivity (≈400 rows).
	if !strings.Contains(res.Plan, "rows=400") {
		t.Errorf("plan = %q, want rows=400 from JITS stats", res.Plan)
	}
}

func TestExplainSyntaxErrors(t *testing.T) {
	e := seedEngine(t, Config{})
	if _, err := e.Exec(`EXPLAIN UPDATE car SET price = 1`); err == nil {
		t.Error("EXPLAIN of DML must fail (only SELECT is supported)")
	}
	if _, err := e.Exec(`EXPLAIN`); err == nil {
		t.Error("bare EXPLAIN must fail")
	}
}

// TestOLTPPointLookupOverhead reproduces the paper's §3.5 applicability
// caveat: on a simple indexed point lookup, forced JITS collection costs
// more than the entire execution — "using such architecture can increase
// the time of query processing if all the queries are very simple".
func TestOLTPPointLookupOverhead(t *testing.T) {
	cfg := Config{JITS: core.DefaultConfig()}
	cfg.JITS.ForceCollect = true
	e := seedEngine(t, cfg)
	mustExec(t, e, `CREATE INDEX ix_car_id ON car (id)`)
	res := mustExec(t, e, `SELECT make FROM car WHERE id = 123`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Metrics.CompileSeconds <= res.Metrics.ExecSeconds {
		t.Errorf("point lookup: collection overhead (%v) should dominate execution (%v)",
			res.Metrics.CompileSeconds, res.Metrics.ExecSeconds)
	}
	// With the sensitivity analysis on instead, repeated identical lookups
	// stop collecting — the overhead is a first-query cost.
	cfg2 := Config{JITS: core.DefaultConfig()}
	e2 := seedEngine(t, cfg2)
	mustExec(t, e2, `CREATE INDEX ix_car_id ON car (id)`)
	var lastCompile float64
	for i := 0; i < 4; i++ {
		r := mustExec(t, e2, `SELECT make FROM car WHERE id = 123`)
		lastCompile = r.Metrics.CompileSeconds
	}
	first := mustExec(t, e2, `SELECT make FROM car WHERE id = 124`) // same colgrp
	_ = first
	if lastCompile > 0.001 {
		t.Errorf("sensitivity analysis should stop collecting on repeated lookups: compile = %v", lastCompile)
	}
}

func TestPerGroupSamplingCharges(t *testing.T) {
	base := Config{JITS: core.DefaultConfig()}
	base.JITS.ForceCollect = true
	eff := seedEngine(t, base)

	naive := base
	naive.JITS.PerGroupSampling = true
	pg := seedEngine(t, naive)

	q := `SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry' AND year > 2000`
	r1 := mustExec(t, eff, q)
	r2 := mustExec(t, pg, q)
	// 3 predicates → 7 candidate groups: per-group sampling charges ≈7× the
	// sampling cost of the shared pass.
	if !(r2.Metrics.CompileSeconds > r1.Metrics.CompileSeconds*3) {
		t.Errorf("per-group sampling compile %v should far exceed shared-pass %v",
			r2.Metrics.CompileSeconds, r1.Metrics.CompileSeconds)
	}
	// Identical statistics → identical plan and execution.
	if r1.Plan != r2.Plan {
		t.Errorf("plans differ:\n%s\nvs\n%s", r1.Plan, r2.Plan)
	}
}

func TestTraceOutput(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{JITS: core.DefaultConfig(), Trace: &buf}
	e := seedEngine(t, cfg)
	mustExec(t, e, `SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'`)
	out := buf.String()
	for _, want := range []string{"jits car", "feedback car(make,model)", "plan rows="} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}
