package engine_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/workload"
)

// TestCloseRejectsExec: Close is idempotent and flips every Exec variant to
// ErrClosed.
func TestCloseRejectsExec(t *testing.T) {
	e := engine.New(engine.Config{})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := e.Exec(`SELECT 1 FROM t`); !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("Exec after Close: %v, want ErrClosed", err)
	}
	if _, err := e.ExecContext(context.Background(), `SELECT 1 FROM t`); !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("ExecContext after Close: %v, want ErrClosed", err)
	}
	if _, err := e.ExecWith(`SELECT 1 FROM t`, engine.ExecOptions{}); !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("ExecWith after Close: %v, want ErrClosed", err)
	}
}

// TestCancelledParallelQueryLeaksNoGoroutines cancels queries mid-flight —
// with injected morsel latency so workers are genuinely asleep when the
// deadline lands — and verifies the worker pools drain completely: the
// goroutine count settles back to the pre-query level.
func TestCancelledParallelQueryLeaksNoGoroutines(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)

	cfg := engine.Config{Parallelism: 8}
	cfg.JITS.Enabled = true
	cfg.JITS.SMax = 0.5
	cfg.JITS.SampleSize = 400
	cfg.JITS.Seed = 3
	e := engine.New(cfg)
	d, err := workload.Load(e, workload.Spec{Scale: 0.002, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	stmts := d.Queries(6, 17)

	// Warm up once fault-free so lazy runtime goroutines don't count as leaks.
	if _, err := e.Exec(stmts[0].SQL); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	if err := faultinject.Arm(faultinject.MorselLatency, faultinject.Spec{Every: 1, Latency: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	cancelled := 0
	for _, st := range stmts {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
		if _, err := e.ExecContext(ctx, st.SQL); err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("%q: %v, want deadline exceeded", st.SQL, err)
			}
			cancelled++
		}
		cancel()
	}
	faultinject.Reset()
	if cancelled == 0 {
		t.Fatal("no query was cancelled — the leak check tested nothing")
	}

	// Pools drain synchronously before Exec returns, but give the runtime a
	// few scheduler rounds to retire exiting goroutines before declaring a
	// leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before cancelled queries, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
