package engine_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/debugserver"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/workload"
)

// TestCloseRejectsExec: Close is idempotent and flips every Exec variant to
// ErrClosed.
func TestCloseRejectsExec(t *testing.T) {
	e := engine.New(engine.Config{})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := e.Exec(`SELECT 1 FROM t`); !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("Exec after Close: %v, want ErrClosed", err)
	}
	if _, err := e.ExecContext(context.Background(), `SELECT 1 FROM t`); !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("ExecContext after Close: %v, want ErrClosed", err)
	}
	if _, err := e.ExecWith(`SELECT 1 FROM t`, engine.ExecOptions{}); !errors.Is(err, engine.ErrClosed) {
		t.Fatalf("ExecWith after Close: %v, want ErrClosed", err)
	}
}

// TestDebugReadsDuringCloseLeakNothing closes the engine while debug-server
// reads of the flight recorder and archive are in flight: every request must
// complete without a race (run under -race) — before, during and after Close
// the endpoints answer from consistent snapshots — and once the server shuts
// down the goroutine count settles back, so neither the recorder nor the
// server pinned anything.
func TestDebugReadsDuringCloseLeakNothing(t *testing.T) {
	cfg := engine.Config{Parallelism: 4, FlightRecorderCapacity: -1}
	cfg.JITS.Enabled = true
	cfg.JITS.SMax = 0.5
	cfg.JITS.SampleSize = 400
	cfg.JITS.Seed = 3
	e := engine.New(cfg)
	d, err := workload.Load(e, workload.Spec{Scale: 0.002, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range d.Queries(5, 21) {
		if _, err := e.Exec(st.SQL); err != nil {
			t.Fatal(err)
		}
	}

	before := runtime.NumGoroutine()
	srv := debugserver.New(e)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Hammer the read endpoints from several goroutines, and close the
	// engine midway through the storm.
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			client := &http.Client{Timeout: 5 * time.Second}
			for j := 0; j < 50; j++ {
				for _, path := range []string{"/debug/queries", "/debug/archive", "/debug/health"} {
					resp, err := client.Get("http://" + addr + path)
					if err != nil {
						t.Errorf("GET %s: %v", path, err)
						return
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("GET %s: status %d", path, resp.StatusCode)
						return
					}
				}
			}
		}()
	}
	close(start)
	time.Sleep(2 * time.Millisecond)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// After Close the health endpoint must say so, not hang or crash.
	resp, err := http.Get("http://" + addr + "/debug/health")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"status": "closed"`) {
		t.Fatalf("/debug/health after Close = %s, want status closed", body)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before debug server, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelledParallelQueryLeaksNoGoroutines cancels queries mid-flight —
// with injected morsel latency so workers are genuinely asleep when the
// deadline lands — and verifies the worker pools drain completely: the
// goroutine count settles back to the pre-query level.
func TestCancelledParallelQueryLeaksNoGoroutines(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)

	cfg := engine.Config{Parallelism: 8}
	cfg.JITS.Enabled = true
	cfg.JITS.SMax = 0.5
	cfg.JITS.SampleSize = 400
	cfg.JITS.Seed = 3
	e := engine.New(cfg)
	d, err := workload.Load(e, workload.Spec{Scale: 0.002, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	stmts := d.Queries(6, 17)

	// Warm up once fault-free so lazy runtime goroutines don't count as leaks.
	if _, err := e.Exec(stmts[0].SQL); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	if err := faultinject.Arm(faultinject.MorselLatency, faultinject.Spec{Every: 1, Latency: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	cancelled := 0
	for _, st := range stmts {
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
		if _, err := e.ExecContext(ctx, st.SQL); err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("%q: %v, want deadline exceeded", st.SQL, err)
			}
			cancelled++
		}
		cancel()
	}
	faultinject.Reset()
	if cancelled == 0 {
		t.Fatal("no query was cancelled — the leak check tested nothing")
	}

	// Pools drain synchronously before Exec returns, but give the runtime a
	// few scheduler rounds to retire exiting goroutines before declaring a
	// leak.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before cancelled queries, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
