package engine

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/executor"
	"repro/internal/feedback"
	"repro/internal/flightrec"
	"repro/internal/govern"
	"repro/internal/optimizer"
	"repro/internal/qgm"
	"repro/internal/tracing"
)

// This file is the engine side of the compiled-plan cache (see
// internal/plancache for the container): what a cache entry holds, the
// cached execution fast path that skips parse/JITS-prepare/optimize, and
// the post-execution bookkeeping (feedback, reactive corrections, migration
// cadence) shared between the cold and cached paths.

// cachedPlan is one plan-cache entry: everything execution needs from
// compilation. All three fields are immutable after the compiling statement
// finishes — the executor never mutates the block or the plan tree, and the
// prepare report is read-only — so concurrent sessions may execute the same
// entry simultaneously.
type cachedPlan struct {
	blk  *qgm.Block
	plan optimizer.Node
	prep *core.PrepareReport // JITS decisions of the compiling statement
}

// execCachedSelect executes a cached compiled plan: the execution,
// feedback, and flight-recorder tail of execSelect without any of its
// compilation. The returned Result normally reports zero compile cost —
// that is the amortization the cache buys — and carries the compiling
// statement's PrepareReport so degradation flags are stable across reuse.
//
// A cached plan can still be *wrong* — compiled against estimates the data
// has since outgrown within one epoch, or simply misestimated from the
// start — so re-optimization checkpoints arm here exactly as on the cold
// path. The re-planning estimator is catalog-only (no JITS sampling ran for
// this execution), which is fine: the materialized intermediates carry
// exact cardinalities, and they are what re-planning pivots on. The first
// trigger also evicts the cache entry under key: the plan just proved
// itself stale, and the next execution must recompile rather than re-walk
// the same trap.
func (e *Engine) execCachedSelect(ctx context.Context, key string, ent *cachedPlan, dop int, ts int64, rec *flightrec.Record, mem *govern.Reservation) (*Result, error) {
	var compileMeter, execMeter costmodel.Meter
	var stats *executor.ExecStats
	if rec != nil {
		stats = executor.NewExecStats()
	}
	execSpan := e.tracer.Start(ts, tracing.PhaseExecute)
	reoptState := e.newReoptState(ent.blk)
	rt := &executor.Runtime{DB: e.db, Indexes: e.indexes, Weights: e.weights, Meter: &execMeter, Ctx: ctx, Parallelism: dop, Stats: stats, Mem: mem, Reopt: reoptState}
	octx := &optimizer.Context{
		Est:     &optimizer.Estimator{Cat: e.cat},
		Indexes: e.indexes,
		Weights: e.weights,
		Meter:   &compileMeter,
	}
	res, plan, reopts, err := e.executeWithReopt(ent.blk, ent.plan, rt, octx, reoptState, ts, rec, func() {
		e.planCache.Remove(key)
	})
	if err != nil {
		execSpan.End()
		return nil, err
	}
	execSpan.Attr("rows", len(res.Rows)).Attr("units", fmt.Sprintf("%.0f", execMeter.Units())).Attr("plan_cache", "hit").End()
	if rec != nil {
		rec.Reopts = reopts
	}

	actuals := mergedActuals(reoptState, res.Actuals)
	e.postExecute(ts, ent.blk, actuals, actuals, rec)
	e.tracef("q%d plan rows=%.1f cost=%.0f exec=%.4fs plan_cache=hit",
		ts, plan.Rows(), plan.Cost(), execMeter.Seconds())

	if rec != nil {
		rec.PlanCacheHit = true
		rec.Plan = optimizer.ExplainAnnotated(plan, dop, analyzeAnnotator(stats, ent.prep))
		if ent.prep != nil {
			rec.Degraded = ent.prep.Degraded
			for _, tr := range ent.prep.Tables {
				rec.Tables = append(rec.Tables, flightrec.TableSample{
					Table:      tr.Table,
					Collected:  tr.Collected,
					SampleRows: tr.SampleRows,
					Degraded:   tr.Degraded,
					Reason:     tr.DegradeReason,
				})
				if tr.Degraded {
					rec.DegradeCauses = append(rec.DegradeCauses, tr.Table+": "+tr.DegradeReason)
				}
			}
		}
		optimizer.Walk(plan, func(n optimizer.Node) {
			op := flightrec.OperatorStats{EstRows: n.Rows()}
			switch t := n.(type) {
			case *optimizer.Scan:
				op.Op = t.Describe()
			case *optimizer.Join:
				op.Op = t.Describe()
			case *optimizer.Materialized:
				op.Op = t.Describe()
			}
			if st, ok := stats.Lookup(n); ok {
				op.ActRows = st.Rows
				op.QError = flightrec.QError(op.EstRows, op.ActRows)
				if op.QError > rec.WorstQError {
					rec.WorstQError = op.QError
				}
				switch n.(type) {
				case *optimizer.Scan:
					qerrorScan.Observe(op.QError)
				case *optimizer.Join:
					qerrorJoin.Observe(op.QError)
				}
			}
			rec.Operators = append(rec.Operators, op)
		})
		observeAggQError(ent.blk, plan, stats)
	}

	return &Result{
		Columns:      res.Columns,
		Rows:         res.Rows,
		Plan:         optimizer.ExplainAnnotated(plan, dop, nil),
		Metrics:      buildMetrics(&compileMeter, &execMeter),
		Prepare:      ent.prep,
		PlanCacheHit: true,
		Reopts:       reopts,
	}, nil
}

// postExecute runs the per-execution bookkeeping every executed SELECT owes
// regardless of how its plan was obtained: the LEO-style feedback loop over
// the actuals (allActuals includes subquery scans; mainActuals only the
// outer block's), reactive corrections when that baseline is enabled, and
// the periodic statistics-migration cadence.
func (e *Engine) postExecute(ts int64, blk *qgm.Block, allActuals, mainActuals []executor.ScanActual, rec *flightrec.Record) {
	fbSpan := e.tracer.Start(ts, tracing.PhaseFeedback)
	ledger := e.accuracy.Enabled()
	var obs []core.Observation
	for _, a := range allActuals {
		if a.Trace == nil || a.Conditioned {
			continue
		}
		obs = append(obs, core.Observation{
			Table:     a.Trace.Table,
			ColGrp:    a.Trace.ColGrp,
			StatList:  a.Trace.StatList,
			EstSel:    a.Trace.EstSel,
			ActualSel: a.ActualSelectivity(),
			BaseCard:  int64(a.BaseRows),
		})
		if rec != nil || ledger {
			ef := feedback.ErrorFactor(a.Trace.EstSel, a.ActualSelectivity(), int64(a.BaseRows))
			if rec != nil {
				rec.ErrorFactors = append(rec.ErrorFactors, ef)
			}
			if ledger {
				// The accuracy ledger watches the same feedback stream; a
				// statistic crossing into drifted annotates the statement
				// that tripped the detector.
				if tr, ok := e.accuracy.ObserveFeedback(ts, a.Trace.Table, a.Trace.ColGrp, ef, int64(a.BaseRows)); ok && rec != nil {
					rec.Annotations = append(rec.Annotations,
						fmt.Sprintf("accuracy: %s %s -> %s", tr.Key, tr.From, tr.To))
				}
			}
		}
		e.tracef("q%d feedback %s est=%.5f actual=%.5f stats=%v",
			ts, a.Trace.ColGrp, a.Trace.EstSel, a.ActualSelectivity(), a.Trace.StatList)
	}
	e.jits.Feedback(obs)
	fbSpan.Attr("observations", len(obs)).End()

	// Reactive corrections (LEO baseline): record the *observed*
	// selectivity of each local predicate group for future queries. Without
	// sample domains these land in the exact-match memo — precisely LEO's
	// granularity of adjustment.
	if e.reactiveQSS != nil {
		for slot, preds := range blk.LocalPreds {
			if len(preds) == 0 {
				continue
			}
			for _, a := range mainActuals {
				if a.Slot == slot && !a.Conditioned {
					e.reactiveQSS.Materialize(blk.Tables[slot].Table, preds, a.ActualSelectivity(), ts, nil)
					e.reactiveQSS.SetCardinality(blk.Tables[slot].Table, int64(a.BaseRows), ts)
				}
			}
		}
	}

	// Periodic statistics migration into the catalog.
	if e.migrateEvery > 0 {
		e.mu.Lock()
		e.selectCount++
		due := e.selectCount%int64(e.migrateEvery) == 0
		e.mu.Unlock()
		if due {
			mergeSpan := e.tracer.Start(ts, tracing.PhaseArchiveMerge)
			n := e.jits.MigrateToCatalog(ts)
			mergeSpan.Attr("migrated", n).End()
			if n > 0 {
				// Migrated histograms change the catalog statistics future
				// compilations cost against; cached plans are now stale.
				e.bumpArchiveEpoch()
			}
		}
	}
}
