package engine

import (
	"math"
	"regexp"
	"strings"
	"testing"

	"repro/internal/core"
)

// wallRe matches the wall-clock attribute of an EXPLAIN ANALYZE annotation.
// Wall times are the one nondeterministic field in the output; golden tests
// normalize them and pin everything else byte-for-byte.
var wallRe = regexp.MustCompile(`wall=[^ )]+`)

func normalizeWall(s string) string { return wallRe.ReplaceAllString(s, "wall=<dur>") }

// TestGoldenExplainAnalyze pins the exact EXPLAIN ANALYZE text (modulo wall
// times) for representative plan shapes at parallelism 1 and 4. Estimated
// columns must stay byte-identical to plain EXPLAIN; actual rows and metered
// units are deterministic because the cost model is simulated. The parallel
// rendering must differ only by the Gather header and indentation — morsel
// execution charges the meter identical totals at any dop.
func TestGoldenExplainAnalyze(t *testing.T) {
	e := seedEngine(t, Config{})
	cases := []struct {
		sql      string
		serial   string
		parallel string
	}{
		{
			sql: `EXPLAIN ANALYZE SELECT id FROM car WHERE make = 'Toyota'`,
			serial: "TableScan car as car filter[make = 'Toyota'] rows=40.0 cost=1008" +
				" (actual rows=600 units=1120 wall=<dur>)\n",
			parallel: "Gather(workers=4)\n" +
				"  TableScan car as car filter[make = 'Toyota'] rows=40.0 cost=1008" +
				" (actual rows=600 units=1120 wall=<dur>)\n",
		},
		{
			sql: `EXPLAIN ANALYZE SELECT c.id, o.city FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Ottawa'`,
			serial: "IndexNLJoin on[[1].id = [0].ownerid] rows=40.0 cost=2416 (actual rows=500 units=7820 wall=<dur>)\n" +
				"  TableScan owner as o filter[city = 'Ottawa'] rows=40.0 cost=1008 (actual rows=100 units=220 wall=<dur>)\n" +
				"  TableScan car as c rows=1000.0 cost=1200\n",
			parallel: "Gather(workers=4)\n" +
				"  IndexNLJoin on[[1].id = [0].ownerid] rows=40.0 cost=2416 (actual rows=500 units=7820 wall=<dur>)\n" +
				"    TableScan owner as o filter[city = 'Ottawa'] rows=40.0 cost=1008 (actual rows=100 units=220 wall=<dur>)\n" +
				"    TableScan car as c rows=1000.0 cost=1200\n",
		},
	}
	for _, c := range cases {
		for _, mode := range []struct {
			dop  int
			want string
		}{{1, c.serial}, {4, c.parallel}} {
			res, err := e.ExecWith(c.sql, ExecOptions{Parallelism: mode.dop})
			if err != nil {
				t.Fatalf("%q at dop %d: %v", c.sql, mode.dop, err)
			}
			if got := normalizeWall(res.Plan); got != mode.want {
				t.Errorf("%q at dop %d:\ngot:\n%s\nwant:\n%s", c.sql, mode.dop, got, mode.want)
			}
			// The result rows carry the same text, one line per row under a
			// "plan" column.
			if len(res.Columns) != 1 || res.Columns[0] != "plan" {
				t.Errorf("columns = %v, want [plan]", res.Columns)
			}
			var lines []string
			for _, r := range res.Rows {
				lines = append(lines, r[0].Str())
			}
			if got := normalizeWall(strings.Join(lines, "\n") + "\n"); got != mode.want {
				t.Errorf("%q at dop %d: result rows diverge from Plan:\n%s", c.sql, mode.dop, got)
			}
			assertMetricsConsistent(t, c.sql, res.Metrics)
			if res.Metrics.ExecUnits <= 0 {
				t.Errorf("%q: EXPLAIN ANALYZE must report execution units, got %v", c.sql, res.Metrics.ExecUnits)
			}
		}
	}
}

// assertMetricsConsistent checks the unified-Metrics invariant every
// statement path must satisfy: TotalSeconds is exactly the sum of the
// compile and execution splits, and units convert to seconds consistently.
func assertMetricsConsistent(t *testing.T, sql string, m Metrics) {
	t.Helper()
	if diff := math.Abs(m.TotalSeconds - (m.CompileSeconds + m.ExecSeconds)); diff > 1e-12 {
		t.Errorf("%q: TotalSeconds=%v != CompileSeconds+ExecSeconds=%v",
			sql, m.TotalSeconds, m.CompileSeconds+m.ExecSeconds)
	}
	if m.CompileUnits < 0 || m.ExecUnits < 0 {
		t.Errorf("%q: negative units %+v", sql, m)
	}
}

// TestMetricsUnifiedAcrossStatementPaths exercises every statement shape —
// SELECT, EXPLAIN, EXPLAIN ANALYZE, DML — and asserts they all report
// Metrics through the same construction: the EXPLAIN ANALYZE run must charge
// the same execution units as the plain SELECT, plain EXPLAIN must charge
// none, and DML reports execution-only time with the same total invariant.
func TestMetricsUnifiedAcrossStatementPaths(t *testing.T) {
	e := seedEngine(t, Config{})
	const q = `SELECT id FROM car WHERE make = 'Toyota'`

	sel, err := e.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	assertMetricsConsistent(t, q, sel.Metrics)

	exp, err := e.Exec(`EXPLAIN ` + q)
	if err != nil {
		t.Fatal(err)
	}
	assertMetricsConsistent(t, "EXPLAIN", exp.Metrics)
	if exp.Metrics.ExecUnits != 0 || exp.Metrics.ExecSeconds != 0 {
		t.Errorf("EXPLAIN reported execution work: %+v", exp.Metrics)
	}

	ana, err := e.Exec(`EXPLAIN ANALYZE ` + q)
	if err != nil {
		t.Fatal(err)
	}
	assertMetricsConsistent(t, "EXPLAIN ANALYZE", ana.Metrics)
	if ana.Metrics.ExecUnits != sel.Metrics.ExecUnits {
		t.Errorf("EXPLAIN ANALYZE exec units %v != SELECT exec units %v",
			ana.Metrics.ExecUnits, sel.Metrics.ExecUnits)
	}

	ins, err := e.Exec(`INSERT INTO car VALUES (20001, 1, 'Lada', 'Niva', 1988, 900.0)`)
	if err != nil {
		t.Fatal(err)
	}
	assertMetricsConsistent(t, "INSERT", ins.Metrics)
	if ins.Metrics.CompileUnits != 0 || ins.Metrics.ExecUnits <= 0 {
		t.Errorf("INSERT metrics %+v, want exec-only work", ins.Metrics)
	}
}

// TestExplainAnalyzeDegradedFlag forces JITS collection to degrade via the
// sample-row budget and asserts the fallback is flagged on the affected
// scan. Tables are collected in name order, so with a one-row budget "car"
// consumes it and "owner" degrades.
func TestExplainAnalyzeDegradedFlag(t *testing.T) {
	e := seedEngine(t, Config{JITS: core.Config{
		Enabled: true, ForceCollect: true, SampleSize: 50, SampleBudgetRows: 1, Seed: 1,
	}})
	res, err := e.Exec(`EXPLAIN ANALYZE SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Ottawa' AND c.make = 'Toyota'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prepare == nil || !res.Prepare.Degraded {
		t.Fatalf("expected degraded prepare, got %+v", res.Prepare)
	}
	var ownerLine string
	for _, line := range strings.Split(res.Plan, "\n") {
		if strings.Contains(line, "owner as o") {
			ownerLine = line
		}
	}
	if !strings.Contains(ownerLine, "[degraded: sample-row budget exhausted]") {
		t.Errorf("owner scan not flagged degraded:\n%s", res.Plan)
	}
	if !strings.Contains(ownerLine, "(actual rows=") {
		t.Errorf("owner scan missing actuals:\n%s", res.Plan)
	}
	// car's collection succeeded (it consumed the budget), so its scan must
	// not carry a degradation flag.
	for _, line := range strings.Split(res.Plan, "\n") {
		if strings.Contains(line, "car as c") && strings.Contains(line, "[degraded") {
			t.Errorf("car scan wrongly flagged:\n%s", res.Plan)
		}
	}
}
