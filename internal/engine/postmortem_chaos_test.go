package engine_test

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/flightrec"
	"repro/internal/workload"
)

// TestChaosPostMortemSnapshots is the flight recorder's chaos contract: a
// run with exactly one armed fault (Limit: 1) leaves exactly one post-mortem
// snapshot, and that snapshot names the injected fault class — either as the
// statement error (execution faults) or as a degradation cause (sampling
// faults). Per fault class.
func TestChaosPostMortemSnapshots(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos replay is slow")
	}
	classes := []struct {
		name  string
		point faultinject.Point
		// matches reports whether the snapshot is attributable to the class.
		matches func(rec flightrec.Record) bool
	}{
		{
			name:  "storage-scan-error",
			point: faultinject.StorageScan,
			matches: func(rec flightrec.Record) bool {
				return strings.Contains(rec.Err, string(faultinject.StorageScan))
			},
		},
		{
			name:  "sampling-degradation",
			point: faultinject.SamplingRows,
			matches: func(rec flightrec.Record) bool {
				if !rec.Degraded || rec.Err != "" {
					return false
				}
				for _, cause := range rec.DegradeCauses {
					if strings.Contains(cause, "sampling error") &&
						strings.Contains(cause, string(faultinject.SamplingRows)) {
						return true
					}
				}
				return false
			},
		},
		{
			name:  "worker-panic",
			point: faultinject.WorkerPanic,
			matches: func(rec flightrec.Record) bool {
				// A worker panic surfaces as a clean statement error when it
				// hits the executor pool, or as a recovered-panic degradation
				// when it hits the sampling pool.
				if strings.Contains(rec.Err, string(faultinject.WorkerPanic)) {
					return true
				}
				for _, cause := range rec.DegradeCauses {
					if strings.Contains(cause, "recovered panic") {
						return true
					}
				}
				return false
			},
		},
	}
	for _, c := range classes {
		t.Run(c.name, func(t *testing.T) {
			faultinject.Reset()
			t.Cleanup(faultinject.Reset)

			cfg := engine.Config{Parallelism: 4, FlightRecorderCapacity: -1}
			cfg.JITS.Enabled = true
			cfg.JITS.SMax = 0.5
			cfg.JITS.SampleSize = 800
			cfg.JITS.Seed = 7
			e := engine.New(cfg)
			d, err := workload.Load(e, workload.Spec{Scale: 0.004, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}
			// Arm after the load so the single fire lands on a query, then
			// run enough queries that the fault is guaranteed to have fired
			// and several clean statements follow it.
			if err := faultinject.Arm(c.point, faultinject.Spec{Every: 1, Limit: 1}); err != nil {
				t.Fatal(err)
			}
			for _, st := range d.Queries(20, int64(chaosSeed)) {
				_, _ = e.Exec(st.SQL) // the one faulted statement may error
			}
			if fired := faultinject.Fired(c.point); fired != 1 {
				t.Fatalf("%s fired %d times, want exactly 1 (Limit: 1)", c.point, fired)
			}
			pms := e.Recorder().PostMortems()
			if len(pms) != 1 {
				for _, pm := range pms {
					t.Logf("post-mortem q%d err=%q degraded=%v causes=%v", pm.QID, pm.Err, pm.Degraded, pm.DegradeCauses)
				}
				t.Fatalf("%d post-mortem snapshots, want exactly 1", len(pms))
			}
			if !c.matches(pms[0]) {
				t.Fatalf("post-mortem does not name the injected fault class %s:\nerr=%q degraded=%v causes=%v",
					c.point, pms[0].Err, pms[0].Degraded, pms[0].DegradeCauses)
			}
		})
	}
}
