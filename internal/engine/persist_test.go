package engine

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestStatisticsSurviveRestart(t *testing.T) {
	// Session 1: JITS collects and materializes statistics.
	cfg := Config{JITS: core.DefaultConfig()}
	cfg.JITS.ForceCollect = true
	e1 := seedEngine(t, cfg)
	mustExec(t, e1, `SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'`)
	if e1.JITS().Archive().Histograms() == 0 {
		t.Fatal("nothing materialized")
	}
	var buf bytes.Buffer
	if err := e1.SaveStatistics(&buf); err != nil {
		t.Fatal(err)
	}

	// Session 2: a fresh engine (JITS collection disabled so only the
	// restored archive can inform the plan) restores the statistics.
	cfg2 := Config{JITS: core.DefaultConfig()}
	cfg2.JITS.SMax = 1 // never collect: estimates must come from the archive
	e2 := seedEngine(t, cfg2)
	if err := e2.LoadStatistics(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, e2, `EXPLAIN SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'`)
	if !strings.Contains(res.Plan, "rows=400") {
		t.Errorf("restored archive should inform the estimate (rows=400):\n%s", res.Plan)
	}
}

func TestLoadStatisticsRejectsGarbage(t *testing.T) {
	e := New(Config{})
	if err := e.LoadStatistics(strings.NewReader("not json")); err == nil {
		t.Error("garbage must be rejected")
	}
}
