package engine_test

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/workload"
)

// Mid-query re-optimization differentials. The robustness contract: a
// statement that re-planned mid-flight returns exactly the rows it would
// have returned without re-optimization — only the join order and operator
// choices of unexecuted nodes may change. Equivalence is plan-independent,
// like the chaos harness: row multisets with floats rounded (different join
// orders associate float partial sums differently), counts only for
// LIMIT-without-ORDER-BY queries whose row identity is plan-dependent (the
// engine exempts those from re-optimization, but their *baseline* rows
// already differ across dop, so the comparison stays count-based).

func mkReoptEngine(t testing.TB, dop int, reopt engine.ReoptConfig) (*engine.Engine, *workload.Dataset) {
	t.Helper()
	cfg := engine.Config{Parallelism: dop, Reopt: reopt}
	cfg.JITS.Enabled = true
	cfg.JITS.SMax = 0.5
	cfg.JITS.SampleSize = 800
	cfg.JITS.Seed = 7
	e := engine.New(cfg)
	d, err := workload.Load(e, workload.Spec{Scale: 0.004, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return e, d
}

const (
	reoptDiffStmts = 220
	reoptDiffSeed  = 99
)

// aggressiveReopt re-plans on any q-error above 1.5 — far below the
// production default, so the differential exercises many re-planning paths
// rather than the rare catastrophic ones.
var aggressiveReopt = engine.ReoptConfig{Enabled: true, QErrorThreshold: 1.5, MaxReopts: 3}

func TestReoptDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential replay is slow")
	}
	faultinject.Reset()

	// Serial fault-free baseline, re-optimization off.
	eBase, dBase := mkReoptEngine(t, 1, engine.ReoptConfig{})
	stmts := dBase.Workload(reoptDiffStmts, reoptDiffSeed, true)
	type outcome struct {
		countOnly bool
		rows      int
		affected  int
		fp        string
	}
	base := make([]outcome, len(stmts))
	for i, st := range stmts {
		res, err := eBase.Exec(st.SQL)
		if err != nil {
			t.Fatalf("baseline stmt %d %q: %v", i, st.SQL, err)
		}
		base[i] = outcome{countOnly: limitWithoutOrderBy(st.SQL)}
		if st.IsQuery {
			base[i].rows = len(res.Rows)
			base[i].fp = fingerprintRows(res)
		} else {
			base[i].affected = res.RowsAffected
		}
	}

	arms := []struct {
		name  string
		dop   int
		reopt engine.ReoptConfig
	}{
		{"reopt_dop1", 1, aggressiveReopt},
		{"off_dop4", 4, engine.ReoptConfig{}},
		{"reopt_dop4", 4, aggressiveReopt},
	}
	for _, arm := range arms {
		t.Run(arm.name, func(t *testing.T) {
			e, d := mkReoptEngine(t, arm.dop, arm.reopt)
			totalReopts := 0
			for i, st := range d.Workload(reoptDiffStmts, reoptDiffSeed, true) {
				res, err := e.Exec(st.SQL)
				if err != nil {
					t.Fatalf("stmt %d %q: %v", i, st.SQL, err)
				}
				totalReopts += res.Reopts
				b := base[i]
				if !st.IsQuery {
					if res.RowsAffected != b.affected {
						t.Fatalf("stmt %d %q: affected %d, baseline %d", i, st.SQL, res.RowsAffected, b.affected)
					}
					continue
				}
				if b.countOnly {
					if len(res.Rows) != b.rows {
						t.Fatalf("stmt %d %q: %d rows, baseline %d", i, st.SQL, len(res.Rows), b.rows)
					}
					if res.Reopts != 0 {
						t.Fatalf("stmt %d %q: LIMIT-without-ORDER-BY statement re-optimized (%d)", i, st.SQL, res.Reopts)
					}
					continue
				}
				if got := fingerprintRows(res); got != b.fp {
					t.Fatalf("stmt %d %q (reopts=%d): rows diverged from baseline\ngot:\n%s\nwant:\n%s",
						i, st.SQL, res.Reopts, got, b.fp)
				}
			}
			if arm.reopt.Enabled && totalReopts == 0 {
				t.Fatal("no statement re-optimized at threshold 1.5 — the differential tested nothing")
			}
			if !arm.reopt.Enabled && totalReopts != 0 {
				t.Fatalf("re-optimization disabled but %d reopts reported", totalReopts)
			}
			t.Logf("%s: %d re-optimizations over %d statements", arm.name, totalReopts, reoptDiffStmts)
		})
	}
}

// TestChaosMisestimateReopt is the forced-misestimate chaos pass: the
// estimator.misestimate fault skews every scan and join estimate by 16x on
// a seeded schedule, re-optimization is armed at the production threshold,
// and every statement must still produce exactly the fault-free baseline's
// results — the injected estimates are wrong, the answers never are. The
// schedule is dense enough that checkpoints both trigger re-plans and
// survive them.
func TestChaosMisestimateReopt(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos replay is slow")
	}
	base := baselineOutcomes(t)
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)

	e, d := mkChaosEngine(t)
	e.SetReopt(engine.ReoptConfig{Enabled: true}) // production defaults
	if err := faultinject.Arm(faultinject.EstimatorMisestimate, faultinject.SeedSpec(chaosSeed, 2)); err != nil {
		t.Fatal(err)
	}
	totalReopts := 0
	for i, st := range d.Workload(chaosStmts, chaosSeed, true) {
		res, err := e.Exec(st.SQL)
		if err != nil {
			t.Fatalf("stmt %d %q: failed under misestimate chaos: %v", i, st.SQL, err)
		}
		totalReopts += res.Reopts
		b := base[i]
		if b.failed {
			continue
		}
		if !st.IsQuery {
			if res.RowsAffected != b.affected {
				t.Fatalf("stmt %d %q: affected %d, fault-free run affected %d", i, st.SQL, res.RowsAffected, b.affected)
			}
			continue
		}
		if b.countOnly {
			if len(res.Rows) != b.rows {
				t.Fatalf("stmt %d %q: %d rows, fault-free run %d", i, st.SQL, len(res.Rows), b.rows)
			}
			continue
		}
		if got := fingerprintRows(res); got != b.fp {
			t.Fatalf("stmt %d %q (reopts=%d): rows diverged from the fault-free run\ngot:\n%s\nwant:\n%s",
				i, st.SQL, res.Reopts, got, b.fp)
		}
	}
	if fired := faultinject.Fired(faultinject.EstimatorMisestimate); fired == 0 {
		t.Fatal("estimator.misestimate never fired — the probe schedule tested nothing")
	}
	if totalReopts == 0 {
		t.Fatal("no statement re-optimized although estimates were skewed 16x")
	}
	faultinject.Reset()
	if _, err := e.Exec(`SELECT COUNT(*) FROM car`); err != nil {
		t.Fatalf("engine unusable after misestimate chaos: %v", err)
	}
	t.Logf("misestimate chaos: %d re-optimizations over %d statements", totalReopts, chaosStmts)
}

// TestReoptPlanCacheCanary is the stale-plan canary (mirroring the PR 6
// epoch canary): a cached plan that triggers mid-query re-optimization must
// not serve the next execution — the trigger evicts it, the re-planned
// statement is never cached, and a recompile follows.
func TestReoptPlanCacheCanary(t *testing.T) {
	faultinject.Reset()
	cfg := engine.Config{PlanCacheSize: 16}
	e := engine.New(cfg)
	if _, err := workload.Load(e, workload.Spec{Scale: 0.004, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	// Catalog statistics only: the correlated make/model pair breaks the
	// independence assumption, so the car scan's estimate is far below its
	// actual — a guaranteed trigger once re-optimization is armed.
	if err := e.RunstatsAll(); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT COUNT(*) FROM car c, owner o, demographics d WHERE c.ownerid = o.id AND d.ownerid = o.id AND c.make = 'Honda' AND c.model = 'Civic'`

	// Warm: compile and cache with re-optimization off.
	warm, err := e.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if warm.PlanCacheHit {
		t.Fatal("first execution reported a cache hit")
	}
	hit, err := e.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.PlanCacheHit {
		t.Fatal("second execution missed the cache — no cached plan to canary")
	}

	// Arm re-optimization; the next hit executes the (now provably bad)
	// cached plan, triggers, and must evict the entry.
	e.SetReopt(engine.ReoptConfig{Enabled: true, QErrorThreshold: 2})
	trig, err := e.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if !trig.PlanCacheHit {
		t.Fatal("third execution should have hit the cache (entry compiled pre-reopt)")
	}
	if trig.Reopts == 0 {
		t.Fatal("cached correlated-join plan did not trigger re-optimization")
	}
	if !strings.Contains(trig.Plan, "Materialized#") {
		t.Fatalf("re-planned statement's plan shows no Materialized leaf:\n%s", trig.Plan)
	}

	// The canary: the superseded plan must be gone — the next execution
	// recompiles instead of re-walking the same trap.
	after, err := e.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if after.PlanCacheHit {
		t.Fatal("stale plan served after a re-optimization trigger — cache was poisoned")
	}

	// Identical answers throughout.
	want := fingerprintRows(warm)
	for name, res := range map[string]*engine.Result{"hit": hit, "trigger": trig, "after": after} {
		if got := fingerprintRows(res); got != want {
			t.Fatalf("%s execution diverged:\ngot:\n%s\nwant:\n%s", name, got, want)
		}
	}
}

// TestReoptShowQueries checks the introspection surface: SHOW QUERIES
// carries a reopts column and re-optimized statements report a nonzero
// count there.
func TestReoptShowQueries(t *testing.T) {
	faultinject.Reset()
	cfg := engine.Config{FlightRecorderCapacity: 64, Reopt: engine.ReoptConfig{Enabled: true, QErrorThreshold: 2}}
	e := engine.New(cfg)
	if _, err := workload.Load(e, workload.Spec{Scale: 0.004, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	if err := e.RunstatsAll(); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT COUNT(*) FROM car c, owner o WHERE c.ownerid = o.id AND c.make = 'Honda' AND c.model = 'Civic'`
	res, err := e.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reopts == 0 {
		t.Fatal("correlated-join statement did not re-optimize")
	}
	show, err := e.Exec(`SHOW QUERIES`)
	if err != nil {
		t.Fatal(err)
	}
	col := -1
	for i, c := range show.Columns {
		if c == "reopts" {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("SHOW QUERIES has no reopts column: %v", show.Columns)
	}
	found := false
	for _, row := range show.Rows {
		if row[col].Int() > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no SHOW QUERIES row reports a nonzero reopts count")
	}
}
