// Package engine is the public facade of the database: it wires the SQL
// front end, the Query Graph Model, the JITS framework, the cost-based
// optimizer, the executor and the feedback loop into a single Exec call —
// the equivalent of the paper's modified DB2 engine.
//
// Per SELECT statement the engine runs the paper's full pipeline:
//
//	parse → rewrite (QGM) → JITS Prepare (sensitivity analysis + sampling)
//	      → optimize (QSS-aware estimation, join enumeration)
//	      → execute (metered physical operators)
//	      → feedback (actual vs. estimated selectivities → StatHistory)
//
// Compilation work (optimization and JITS statistics collection) and
// execution work accrue on separate meters, so results report the same
// compilation / execution / total split as the paper's Table 3.
package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/accuracy"
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/executor"
	"repro/internal/feedback"
	"repro/internal/flightrec"
	"repro/internal/govern"
	"repro/internal/index"
	"repro/internal/optimizer"
	"repro/internal/plancache"
	"repro/internal/qgm"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/tracing"
	"repro/internal/value"
)

// Config configures a new engine instance.
type Config struct {
	// JITS configures the just-in-time statistics framework; the zero
	// value disables it (traditional processing).
	JITS core.Config
	// Weights override the cost model; zero value selects defaults.
	Weights costmodel.Weights
	// MigrateEvery, when positive, runs the statistics-migration module
	// automatically after every N SELECT statements — the paper's
	// "information in the QSS archive can be used to periodically update
	// the system catalog".
	MigrateEvery int
	// ReactiveCorrections enables a LEO-style *reactive* baseline (the
	// related-work family of the paper's §5.1): after each query, observed
	// actual selectivities are stored as exact-match corrections that
	// benefit future queries with the same predicate groups. The current
	// query still suffers from the wrong estimate — the paper's critique.
	// Only consulted when JITS collection is disabled.
	ReactiveCorrections bool
	// Trace, when non-nil, receives one line per notable per-query decision:
	// JITS collection choices with their s1/s2 scores, the chosen plan's
	// root, estimated-vs-actual selectivities observed by the feedback loop,
	// and per-phase span timings. All writes are serialized through an
	// internal tracing.Tracer, so the writer may be shared by concurrent
	// statements without external locking.
	Trace io.Writer
	// Parallelism is the default degree of intra-query parallelism for
	// SELECT execution and JITS sample evaluation. Values <= 1 run the
	// serial operators, which reproduce the paper's cost accounting
	// exactly; higher values dispatch morsels to a worker pool without
	// changing results or metered work. Per-query override: ExecWith.
	Parallelism int
	// StatementTimeout bounds every statement's wall-clock time; 0 means
	// no deadline. Expiry cancels JITS sampling at the next table boundary
	// (the statement still compiles, degraded to catalog statistics) and
	// execution at the next morsel boundary (the statement errors with
	// context.DeadlineExceeded). Per-query override: ExecOptions.Timeout.
	StatementTimeout time.Duration
	// FlightRecorderCapacity enables the statement flight recorder with a
	// ring of that many records (SHOW QUERIES / EXPLAIN HISTORY read it).
	// 0 leaves recording off — the recorder still exists, so it can be
	// enabled later through Recorder(), but statements pay only one atomic
	// load. Negative values select flightrec.DefaultCapacity.
	FlightRecorderCapacity int
	// Governor configures the resource governor: admission control
	// (MaxConcurrent/QueueDepth), the engine-global memory pool, and the
	// JITS sampling circuit breaker. The zero value disables all three.
	// Its per-statement memory budget defaults to JITS.MemBudgetBytes, so
	// setting only the JITS knob budget-bounds both sampling buffers and
	// buffering executor operators.
	Governor govern.Config
	// PlanCacheSize enables the compiled-plan cache with at most that many
	// entries: repeated SELECTs (keyed on sqlparser.Normalize of their text
	// and the engine's archive epoch) skip parse, JITS preparation and
	// optimization entirely. 0 disables the cache; negative selects
	// plancache.DefaultSize. Any DML, DDL, statistics migration or archive
	// restore bumps the epoch and invalidates every cached plan, so a plan
	// compiled against pre-update statistics is never reused afterwards.
	PlanCacheSize int
	// RowOrientedExec forces the executor's legacy row-at-a-time scan and
	// aggregation paths instead of the vectorized chunk kernels. Results
	// and metered work are identical; only wall-clock differs. It exists
	// as the benchmark baseline and differential-testing foil.
	RowOrientedExec bool
	// StorageChunkSize overrides the rows-per-chunk capacity of the
	// columnar storage layer for tables created by this engine; 0 keeps
	// storage.DefaultChunkSize. Benchmarks sweep it.
	StorageChunkSize int
	// Reopt arms checkpointed mid-query re-optimization: at pipeline
	// breakers (join-input materializations) the executor compares observed
	// cardinality against the plan's estimate, and when the q-error exceeds
	// the threshold the engine re-plans the unexecuted remainder with the
	// materialized intermediates as exact-cardinality leaves. The zero value
	// disables it; SetReopt retunes a live engine.
	Reopt ReoptConfig
	// Accuracy configures the estimator-accuracy ledger (SHOW ACCURACY /
	// SHOW DRIFT, /debug/accuracy): per-statistic EWMA q-error, DML churn
	// and CUSUM drift detection over the feedback stream. The zero value
	// leaves the ledger disabled; statements then pay one atomic load per
	// probe. It can also be enabled later through Accuracy().
	Accuracy accuracy.Config
}

// ExecOptions tune one Exec call — the per-query session knobs.
type ExecOptions struct {
	// Parallelism overrides the engine's default degree of parallelism for
	// this statement; 0 keeps the engine default, 1 forces serial.
	Parallelism int
	// Timeout overrides Config.StatementTimeout for this statement; 0
	// keeps the engine default.
	Timeout time.Duration
	// Annotations are free-form labels attached to the statement's
	// flight-recorder record (the SQL service tags statements that arrived
	// through a retry or on a resumed session). Ignored while the recorder
	// is disabled.
	Annotations []string
}

// Metrics reports the simulated timing split of one statement.
type Metrics struct {
	CompileUnits   float64
	ExecUnits      float64
	CompileSeconds float64
	ExecSeconds    float64
	TotalSeconds   float64
}

// Result is the outcome of one Exec call.
type Result struct {
	Columns      []string
	Rows         [][]value.Datum
	RowsAffected int
	Plan         string // EXPLAIN rendering of the chosen join tree
	Metrics      Metrics
	Prepare      *core.PrepareReport // JITS decisions, nil when disabled
	// PlanCacheHit reports that this statement reused a compiled plan from
	// the plan cache, skipping parse/JITS-prepare/optimize entirely.
	PlanCacheHit bool
	// Reopts counts the mid-query re-optimizations this statement went
	// through; Plan renders the plan that actually completed.
	Reopts int
}

// Engine is the database instance.
type Engine struct {
	mu           sync.Mutex
	db           *storage.Database
	cat          *catalog.Catalog
	indexes      *index.Set
	history      *feedback.History
	jits         *core.JITS
	weights      costmodel.Weights
	clock        int64
	migrateEvery int
	selectCount  int64
	tracer       *tracing.Tracer
	recorder     *flightrec.Recorder
	accuracy     *accuracy.Ledger
	governor     *govern.Governor
	parallelism  int
	rowOriented  bool
	reoptCfg     ReoptConfig
	stmtTimeout  time.Duration
	closed       atomic.Bool
	// planCache is nil when Config.PlanCacheSize is 0 (cache disabled).
	planCache *plancache.Cache
	// archiveEpoch versions the statistics/data state cached plans were
	// compiled against; bumpArchiveEpoch documents what moves it.
	archiveEpoch atomic.Uint64

	// staticQSS holds the "workload statistics" baseline: column-group
	// statistics precollected from the workload text and never refreshed.
	// Consulted only when JITS collection is disabled.
	staticQSS *core.Archive
	// reactiveQSS holds the LEO-style corrections store when
	// ReactiveCorrections is enabled.
	reactiveQSS *core.Archive
}

// New creates an empty engine.
func New(cfg Config) *Engine {
	w := cfg.Weights
	if w == (costmodel.Weights{}) {
		w = costmodel.DefaultWeights()
	}
	cat := catalog.New()
	hist := feedback.NewHistory()
	ixs := index.NewSet()
	if cfg.JITS.Parallelism == 0 {
		cfg.JITS.Parallelism = cfg.Parallelism
	}
	tracer := tracing.New(cfg.Trace)
	jits := core.New(cfg.JITS, hist, cat)
	jits.BindIndexes(ixs)
	jits.BindTracer(tracer)
	recorder := flightrec.New(cfg.FlightRecorderCapacity)
	// The recorder observes tracer spans for per-phase timings; the observer
	// is inert (one atomic load per span site) until the recorder is enabled.
	tracer.SetObserver(recorder)
	if cfg.FlightRecorderCapacity != 0 {
		recorder.Enable()
	}
	if cfg.Governor.StatementMemBudgetBytes == 0 {
		cfg.Governor.StatementMemBudgetBytes = cfg.JITS.MemBudgetBytes
	}
	governor := govern.New(cfg.Governor)
	jits.BindBreaker(governor.SamplingBreaker())
	// The accuracy ledger always exists (so it can be enabled later); while
	// disabled every probe on it is one atomic load. It subscribes to
	// archive merges through the JITS coordinator and shares the tracer.
	ledger := accuracy.New(cfg.Accuracy)
	ledger.BindTracer(tracer)
	jits.BindMergeObserver(ledger)
	e := &Engine{
		db:           storage.NewDatabase(),
		cat:          cat,
		indexes:      ixs,
		history:      hist,
		jits:         jits,
		weights:      w,
		migrateEvery: cfg.MigrateEvery,
		tracer:       tracer,
		recorder:     recorder,
		accuracy:     ledger,
		governor:     governor,
		parallelism:  cfg.Parallelism,
		rowOriented:  cfg.RowOrientedExec,
		reoptCfg:     cfg.Reopt,
		stmtTimeout:  cfg.StatementTimeout,
		planCache:    plancache.New(cfg.PlanCacheSize),
	}
	e.db.SetChunkSize(cfg.StorageChunkSize)
	if cfg.ReactiveCorrections {
		e.reactiveQSS = core.NewArchive(0, 0)
	}
	return e
}

// DB exposes the storage layer (the data generator loads tables directly).
func (e *Engine) DB() *storage.Database { return e.db }

// Catalog exposes the system catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Indexes exposes the index registry.
func (e *Engine) Indexes() *index.Set { return e.indexes }

// History exposes the feedback StatHistory.
func (e *Engine) History() *feedback.History { return e.history }

// JITS exposes the framework coordinator (experiments tune s_max on it).
func (e *Engine) JITS() *core.JITS { return e.jits }

// Weights returns the active cost-model weights.
func (e *Engine) Weights() costmodel.Weights { return e.weights }

// tick advances and returns the engine's logical clock. Every statement
// gets a fresh timestamp; histogram buckets and statistics carry these.
func (e *Engine) tick() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.clock++
	return e.clock
}

// Now returns the current logical time without advancing it.
func (e *Engine) Now() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.clock
}

// tracef writes one trace line when tracing is enabled. The tracer
// serializes concurrent writers; before it existed, concurrent statements
// interleaved partial lines (and raced) on the shared Config.Trace writer.
func (e *Engine) tracef(format string, args ...any) {
	e.tracer.Printf(format, args...)
}

// Tracer exposes the engine's phase tracer (tests and tools may emit their
// own lines through it; it is always non-nil).
func (e *Engine) Tracer() *tracing.Tracer { return e.tracer }

// Recorder exposes the statement flight recorder. Always non-nil; it records
// only while enabled (Config.FlightRecorderCapacity != 0, or an explicit
// Enable). Safe to read concurrently with statements and across Close.
func (e *Engine) Recorder() *flightrec.Recorder { return e.recorder }

// Accuracy exposes the estimator-accuracy ledger. Always non-nil; it
// records only while enabled (Config.Accuracy.Enabled, or an explicit
// Enable). Safe to read concurrently with statements.
func (e *Engine) Accuracy() *accuracy.Ledger { return e.accuracy }

// Closed reports whether Close has been called (the debug server's health
// endpoint reads this).
func (e *Engine) Closed() bool { return e.closed.Load() }

// Governor exposes the resource governor (always non-nil; with the zero
// Config.Governor it is a no-op governor whose snapshot reports everything
// disabled). The debug server's health endpoint and tests read it.
func (e *Engine) Governor() *govern.Governor { return e.governor }

// PlanCache exposes the compiled-plan cache; nil when Config.PlanCacheSize
// is 0. Tests and the serve experiment read its Stats.
func (e *Engine) PlanCache() *plancache.Cache { return e.planCache }

// ArchiveEpoch returns the current statistics/data epoch. Cached plans are
// keyed on it; see bumpArchiveEpoch for what advances it.
func (e *Engine) ArchiveEpoch() uint64 { return e.archiveEpoch.Load() }

// bumpArchiveEpoch advances the epoch and eagerly sweeps now-stale plan
// cache entries. It is called after every statement or API that changes
// data or the statistics cached plans were costed against: DML (the archive
// merge counters and sensitivity analysis react to the same UDI activity),
// DDL, statistics migration, RUNSTATS, workload-stats collection, and
// archive restore.
func (e *Engine) bumpArchiveEpoch() {
	n := e.archiveEpoch.Add(1)
	e.planCache.Invalidate(n)
}

// TableSchema implements qgm.SchemaResolver.
func (e *Engine) TableSchema(name string) (*storage.Schema, bool) {
	tbl, ok := e.db.Table(name)
	if !ok {
		return nil, false
	}
	return tbl.Schema(), true
}

// ErrClosed is returned by Exec variants after Close.
var ErrClosed = errors.New("engine: closed")

// Close marks the engine closed: subsequent Exec calls fail with ErrClosed.
// In-flight statements finish normally (the engine has no background
// goroutines of its own — parallel worker pools live only for the duration
// of one operator call and always drain before it returns). Close is
// idempotent.
func (e *Engine) Close() error {
	e.closed.Store(true)
	return nil
}

// Drain waits until every admitted statement has released its governor slot
// and the admission queue is empty — the engine's graceful-drain hook.
// Callers that want a true drain must stop feeding the engine first (the SQL
// service stops accepting and quiesces its sessions before calling this);
// Drain itself rejects nothing. It returns ctx.Err() if the context expires
// while statements are still in flight, and immediately when admission
// control is disabled (there are no slots to account for).
func (e *Engine) Drain(ctx context.Context) error {
	return e.governor.WaitIdle(ctx)
}

// Exec parses and runs one SQL statement at the engine's default degree of
// parallelism.
func (e *Engine) Exec(sql string) (*Result, error) {
	return e.ExecWithContext(context.Background(), sql, ExecOptions{})
}

// ExecContext is Exec bounded by ctx: cancellation or deadline expiry stops
// JITS sampling at the next per-table boundary (compilation degrades to
// catalog statistics) and execution at the next morsel boundary (the
// statement returns the context's error).
func (e *Engine) ExecContext(ctx context.Context, sql string) (*Result, error) {
	return e.ExecWithContext(ctx, sql, ExecOptions{})
}

// ExecWith parses and runs one SQL statement with per-query session options.
func (e *Engine) ExecWith(sql string, opts ExecOptions) (*Result, error) {
	return e.ExecWithContext(context.Background(), sql, opts)
}

// execMode selects what execSelect does after compilation.
type execMode uint8

const (
	// modeExecute runs the statement and returns its rows.
	modeExecute execMode = iota
	// modeExplain compiles only (including JITS collection) and returns the
	// plan text as rows.
	modeExplain
	// modeExplainAnalyze runs the full pipeline and returns the plan text
	// annotated with per-operator actuals as rows.
	modeExplainAnalyze
)

// ExecWithContext parses and runs one SQL statement with per-query session
// options under ctx. A statement timeout (ExecOptions.Timeout, falling back
// to Config.StatementTimeout) is layered onto ctx as a deadline.
func (e *Engine) ExecWithContext(ctx context.Context, sql string, opts ExecOptions) (*Result, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = e.stmtTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Admission control: the statement queues (FIFO) for an execution slot
	// before any work — parsing included — happens on its behalf. Shed
	// statements fail with govern.ErrOverloaded; a statement cancelled while
	// queued returns ctx.Err() and gives any concurrently granted slot back.
	ticket, err := e.governor.Admit(ctx)
	if err != nil {
		stmtErrors.Inc()
		return nil, err
	}
	defer ticket.Release()
	// Per-statement memory reservation: sampling buffers and buffering
	// executor operators charge it; Release returns any leak (an errored
	// statement's outstanding charges) to the global pool.
	mem := e.governor.NewReservation()
	defer mem.Release()
	dop := opts.Parallelism
	if dop == 0 {
		dop = e.parallelism
	}
	start := time.Now()
	// Plan-cache fast path: a hit executes the cached compiled plan without
	// parsing, JITS preparation or optimization. Only executable SELECTs are
	// ever stored, so SHOW/EXPLAIN/DML statements simply miss (their texts
	// normalize to keys no Put writes). The key's epoch pins the statistics
	// and data state the plan was compiled against.
	var cacheKey string
	var cacheEpoch uint64
	if e.planCache != nil {
		if key, nerr := sqlparser.Normalize(sql); nerr == nil {
			epoch := e.archiveEpoch.Load()
			if v, ok := e.planCache.Get(key, epoch); ok {
				ent := v.(*cachedPlan)
				ts := e.tick()
				var rec *flightrec.Record
				if e.recorder.Enabled() {
					rec = e.recorder.Begin(ts, sql)
					rec.Annotations = opts.Annotations
					rec.ArchiveEpoch = epoch
				}
				stmtSelect.Inc()
				res, err := e.execCachedSelect(ctx, key, ent, dop, ts, rec, mem)
				wall := time.Since(start)
				govern.ObserveStatementPeak(mem.Peak())
				if rec != nil {
					rec.Kind = "select"
					rec.Wall = wall
					rec.QueueWait = ticket.Wait()
					rec.MemPeakBytes = mem.Peak()
					if err != nil {
						rec.Err = err.Error()
					} else if res != nil {
						rec.Rows = len(res.Rows)
						rec.ExecSeconds = res.Metrics.ExecSeconds
					}
					e.recorder.Commit(rec)
				}
				if err != nil {
					stmtErrors.Inc()
					return nil, err
				}
				stmtWall.Observe(wall.Seconds())
				return res, nil
			}
			cacheKey, cacheEpoch = key, epoch
		}
	}
	// Parsing precedes statement-timestamp assignment, so its span carries
	// qid 0 ("pre-statement").
	parseSpan := e.tracer.Start(0, tracing.PhaseParse)
	stmt, err := sqlparser.Parse(sql)
	parseSpan.End()
	if err != nil {
		stmtErrors.Inc()
		return nil, err
	}
	// One logical-clock tick per parsed statement; the timestamp doubles as
	// the statement's qid in traces and the flight recorder. Parse errors do
	// not consume a tick.
	ts := e.tick()
	var rec *flightrec.Record
	if e.recorder.Enabled() {
		rec = e.recorder.Begin(ts, sql)
		rec.Annotations = opts.Annotations
		rec.ArchiveEpoch = e.archiveEpoch.Load()
	}
	var res *Result
	var kind string
	switch s := stmt.(type) {
	case *sqlparser.SelectStmt:
		kind = "select"
		stmtSelect.Inc()
		res, err = e.execSelect(ctx, s, sql, modeExecute, dop, ts, rec, mem, cacheKey, cacheEpoch)
	case *sqlparser.ExplainStmt:
		mode := modeExplain
		if s.Analyze {
			kind = "explain_analyze"
			mode = modeExplainAnalyze
			stmtExplainAnalyze.Inc()
		} else {
			kind = "explain"
			stmtExplain.Inc()
		}
		res, err = e.execSelect(ctx, s.Select, sql, mode, dop, ts, rec, mem, "", 0)
	case *sqlparser.ShowStmt:
		switch s.Kind {
		case sqlparser.ShowStats:
			kind = "show_stats"
			stmtShowStats.Inc()
			res, err = e.execShowStats(ts)
		case sqlparser.ShowQueries:
			kind = "show_queries"
			stmtShowQueries.Inc()
			res, err = e.execShowQueries(s.Last)
		case sqlparser.ShowMetrics:
			kind = "show_metrics"
			stmtShowMetrics.Inc()
			res, err = e.execShowMetrics()
		case sqlparser.ShowAccuracy:
			kind = "show_accuracy"
			stmtShowAccuracy.Inc()
			res, err = e.execShowAccuracy(ts, s.Table)
		case sqlparser.ShowDrift:
			kind = "show_drift"
			stmtShowDrift.Inc()
			res, err = e.execShowDrift(ts)
		default:
			err = fmt.Errorf("engine: unsupported SHOW %v", s.Kind)
		}
	case *sqlparser.ExplainHistoryStmt:
		kind = "explain_history"
		stmtExplainHistory.Inc()
		res, err = e.execExplainHistory(s.QID)
	case *sqlparser.InsertStmt:
		kind = "dml"
		stmtDML.Inc()
		res, err = e.execInsert(s)
	case *sqlparser.UpdateStmt:
		kind = "dml"
		stmtDML.Inc()
		res, err = e.execUpdate(s)
	case *sqlparser.DeleteStmt:
		kind = "dml"
		stmtDML.Inc()
		res, err = e.execDelete(s)
	case *sqlparser.CreateTableStmt:
		kind = "ddl"
		stmtDDL.Inc()
		res, err = e.execCreateTable(s)
	case *sqlparser.CreateIndexStmt:
		kind = "ddl"
		stmtDDL.Inc()
		res, err = e.execCreateIndex(s)
	default:
		e.recorder.Abort(rec)
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
	// Data- or statistics-changing statements move the archive epoch, so no
	// later statement can reuse a plan compiled against the old state.
	if err == nil && (kind == "dml" || kind == "ddl") {
		e.bumpArchiveEpoch()
	}
	// DML churn ages the accuracy ledger's view of the table's statistics.
	if err == nil && kind == "dml" && res != nil && res.RowsAffected > 0 && e.accuracy.Enabled() {
		var table string
		switch s := stmt.(type) {
		case *sqlparser.InsertStmt:
			table = s.Table
		case *sqlparser.UpdateStmt:
			table = s.Table
		case *sqlparser.DeleteStmt:
			table = s.Table
		}
		e.accuracy.RecordChurn(ts, table, int64(res.RowsAffected))
	}
	wall := time.Since(start)
	govern.ObserveStatementPeak(mem.Peak())
	if rec != nil {
		rec.Kind = kind
		rec.Wall = wall
		rec.QueueWait = ticket.Wait()
		rec.MemPeakBytes = mem.Peak()
		if err != nil {
			rec.Err = err.Error()
		} else if res != nil {
			rec.Rows = len(res.Rows)
			rec.RowsAffected = res.RowsAffected
			rec.CompileSeconds = res.Metrics.CompileSeconds
			rec.ExecSeconds = res.Metrics.ExecSeconds
		}
		e.recorder.Commit(rec)
	}
	if err != nil {
		stmtErrors.Inc()
		return nil, err
	}
	stmtWall.Observe(wall.Seconds())
	return res, nil
}

// Degradation snapshots the JITS graceful-degradation counters: how many
// tables fell back to catalog statistics since the engine started, by cause.
func (e *Engine) Degradation() costmodel.DegradationCounts {
	return e.jits.DegradationCounts()
}

// staticSource adapts the precollected workload-statistics archive to the
// optimizer's StatsSource interface.
type staticSource struct {
	archive *core.Archive
	ts      int64
}

func (s *staticSource) GroupSelectivity(table string, preds []qgm.Predicate) (float64, string, bool) {
	return s.archive.GroupSelectivity(table, preds, s.ts)
}

func (s *staticSource) Cardinality(table string) (int64, bool) {
	return s.archive.Cardinality(table)
}

func (s *staticSource) ColumnNDV(table, column string) (int64, bool) {
	return s.archive.ColumnNDV(table, column)
}

// buildMetrics assembles one statement's Metrics from its compile and
// execution meters. Every statement path — SELECT, EXPLAIN, EXPLAIN ANALYZE,
// DML, degraded compilation, timeout — reports through this single helper,
// so the invariant TotalSeconds == CompileSeconds + ExecSeconds holds
// everywhere (with a nil meter contributing zero).
func buildMetrics(compile, exec *costmodel.Meter) Metrics {
	var m Metrics
	if compile != nil {
		m.CompileUnits = compile.Units()
		m.CompileSeconds = compile.Seconds()
	}
	if exec != nil {
		m.ExecUnits = exec.Units()
		m.ExecSeconds = exec.Seconds()
	}
	m.TotalSeconds = m.CompileSeconds + m.ExecSeconds
	return m
}

// planRows renders a plan text as one result row per line under a "plan"
// column — the EXPLAIN / EXPLAIN ANALYZE result shape.
func planRows(text string) [][]value.Datum {
	var rows [][]value.Datum
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		rows = append(rows, []value.Datum{value.NewString(line)})
	}
	return rows
}

// analyzeAnnotator builds the EXPLAIN ANALYZE annotation callback: executor
// actuals per plan node, plus a degradation flag on scans whose JITS
// collection fell back to catalog statistics.
func analyzeAnnotator(stats *executor.ExecStats, prep *core.PrepareReport) optimizer.AnnotateFunc {
	degraded := make(map[string]string)
	if prep != nil {
		for _, tr := range prep.Tables {
			if tr.Degraded {
				degraded[tr.Table] = tr.DegradeReason
			}
		}
	}
	return func(n optimizer.Node) (optimizer.Annotation, bool) {
		st, ok := stats.Lookup(n)
		if !ok {
			return optimizer.Annotation{}, false
		}
		a := optimizer.Annotation{ActualRows: st.Rows, Units: st.Units, Wall: st.Wall}
		if sc, isScan := n.(*optimizer.Scan); isScan {
			if reason, deg := degraded[sc.Table]; deg {
				a.Flags = "degraded: " + reason
			}
		}
		return a, true
	}
}

// execSelect runs the SELECT pipeline in one of three modes. modeExplain
// compiles — including any JITS statistics collection, whose cost shows up
// in the metrics — but does not execute: the result carries the plan text as
// rows, one per line. modeExplainAnalyze runs the full pipeline (execution,
// feedback, reactive corrections, migration) and returns the plan text
// annotated with each operator's actual rows, metered units and wall time.
func (e *Engine) execSelect(ctx context.Context, stmt *sqlparser.SelectStmt, sql string, mode execMode, dop int, ts int64, rec *flightrec.Record, mem *govern.Reservation, cacheKey string, cacheEpoch uint64) (*Result, error) {
	var compileMeter, execMeter costmodel.Meter

	q, err := qgm.Build(stmt, e)
	if err != nil {
		return nil, err
	}
	q.SQL = sql
	blk := q.Blocks[0]

	// JITS compile-time statistics collection. Prepare degrades rather than
	// fails: on budget exhaustion, sampling faults or cancellation it
	// reports fallback tables and the optimizer below transparently uses
	// catalog statistics for them.
	prepSpan := e.tracer.Start(ts, tracing.PhasePrepare)
	qstats, prep, err := e.jits.PrepareBudgeted(ctx, q, e.db, ts, &compileMeter, e.weights, mem)
	if prep != nil {
		prepSpan.Attr("tables", len(prep.Tables)).Attr("units", fmt.Sprintf("%.0f", compileMeter.Units()))
	}
	prepSpan.End()
	if err != nil {
		return nil, err
	}
	if rec != nil && prep != nil {
		rec.Degraded = prep.Degraded
		for _, tr := range prep.Tables {
			rec.Tables = append(rec.Tables, flightrec.TableSample{
				Table:      tr.Table,
				Collected:  tr.Collected,
				SampleRows: tr.SampleRows,
				Degraded:   tr.Degraded,
				Reason:     tr.DegradeReason,
			})
			if tr.Degraded {
				rec.DegradeCauses = append(rec.DegradeCauses, tr.Table+": "+tr.DegradeReason)
			}
		}
	}
	if e.tracer.Enabled() && prep != nil {
		for _, tr := range prep.Tables {
			e.tracef("q%d jits %s collected=%v s1=%.3f s2=%.3f sample=%d groups=%d materialized=%d",
				ts, tr.Table, tr.Collected, tr.Scores.S1, tr.Scores.S2,
				tr.SampleRows, tr.GroupsEvaluated, tr.GroupsMaterialized)
			if tr.Degraded {
				e.tracef("q%d jits %s degraded: %s (catalog fallback)", ts, tr.Table, tr.DegradeReason)
			}
		}
	}
	var source optimizer.StatsSource
	switch {
	case qstats != nil:
		source = qstats
	case e.staticQSS != nil:
		source = &staticSource{archive: e.staticQSS, ts: ts}
	case e.reactiveQSS != nil:
		source = &staticSource{archive: e.reactiveQSS, ts: ts}
	}

	octx := &optimizer.Context{
		Est:     &optimizer.Estimator{Cat: e.cat, QSS: source},
		Indexes: e.indexes,
		Weights: e.weights,
		Meter:   &compileMeter,
	}

	// EXPLAIN ANALYZE — and any executing statement the flight recorder is
	// capturing — collects per-plan-node actuals from the executor; stats
	// stays nil otherwise, keeping the normal path free of the per-operator
	// meter and clock reads.
	var stats *executor.ExecStats
	if mode == modeExplainAnalyze || (rec != nil && mode != modeExplain) {
		stats = executor.NewExecStats()
	}

	// Execute IN-subquery blocks first and lower each semi-join into an IN
	// predicate on the outer block, so the outer optimization sees the
	// materialized match set. Plan text is rendered after execution so the
	// annotated (ANALYZE) and plain renderings share one code path.
	optSpan := e.tracer.Start(ts, tracing.PhaseOptimize)
	var subPlanNodes []optimizer.Node
	var subActuals []executor.ScanActual
	for _, sj := range blk.SemiJoins {
		inner := q.Blocks[sj.Block]
		innerPlan, err := optimizer.Optimize(inner, octx)
		if err != nil {
			optSpan.End()
			return nil, err
		}
		subPlanNodes = append(subPlanNodes, innerPlan)
		if mode == modeExplain {
			continue
		}
		rt := &executor.Runtime{DB: e.db, Indexes: e.indexes, Weights: e.weights, Meter: &execMeter, Ctx: ctx, Parallelism: dop, Stats: stats, Mem: mem, RowOriented: e.rowOriented}
		innerRes, err := executor.Execute(inner, innerPlan, rt)
		if err != nil {
			optSpan.End()
			return nil, err
		}
		subActuals = append(subActuals, innerRes.Actuals...)
		seen := make(map[value.Datum]bool, len(innerRes.Rows))
		values := make([]value.Datum, 0, len(innerRes.Rows))
		for _, row := range innerRes.Rows {
			d := row[0]
			if d.IsNull() || seen[d] {
				continue
			}
			seen[d] = true
			values = append(values, d)
		}
		blk.LocalPreds[sj.Slot] = append(blk.LocalPreds[sj.Slot], qgm.Predicate{
			Slot: sj.Slot, Column: sj.Column, Ordinal: sj.Ordinal,
			Op: qgm.OpIn, Values: values,
		})
	}

	plan, err := optimizer.Optimize(blk, octx)
	optSpan.Attr("units", fmt.Sprintf("%.0f", compileMeter.Units())).End()
	if err != nil {
		return nil, err
	}

	// renderPlan assembles the outer plan plus subquery sections, annotated
	// when ann is non-nil.
	renderPlan := func(ann optimizer.AnnotateFunc) string {
		text := optimizer.ExplainAnnotated(plan, dop, ann)
		for i, sp := range subPlanNodes {
			text += fmt.Sprintf("Subquery %d:\n%s", i+1, optimizer.ExplainAnnotated(sp, dop, ann))
		}
		return text
	}

	if mode == modeExplain {
		explain := renderPlan(nil)
		if rec != nil {
			rec.Plan = explain
			if qstats != nil {
				rec.ArchiveHits = qstats.ArchiveHits()
				rec.ArchiveMisses = qstats.ArchiveMisses()
			}
		}
		return &Result{
			Columns: []string{"plan"},
			Rows:    planRows(explain),
			Plan:    explain,
			Metrics: buildMetrics(&compileMeter, nil),
			Prepare: prep,
		}, nil
	}

	execSpan := e.tracer.Start(ts, tracing.PhaseExecute)
	reoptState := e.newReoptState(blk)
	rt := &executor.Runtime{DB: e.db, Indexes: e.indexes, Weights: e.weights, Meter: &execMeter, Ctx: ctx, Parallelism: dop, Stats: stats, Mem: mem, RowOriented: e.rowOriented, Reopt: reoptState}
	res, plan, reopts, err := e.executeWithReopt(blk, plan, rt, octx, reoptState, ts, rec, nil)
	if err != nil {
		execSpan.End()
		return nil, err
	}
	execSpan.Attr("rows", len(res.Rows)).Attr("units", fmt.Sprintf("%.0f", execMeter.Units())).End()
	if rec != nil {
		rec.Reopts = reopts
	}

	// Feedback, reactive corrections and migration cadence — shared with the
	// plan-cache hit path. Superseded attempts' scan feedback (captured at
	// their trigger points) merges with the final attempt's: the subtrees
	// that produced it never re-executed, so the union double-counts nothing.
	actuals := mergedActuals(reoptState, res.Actuals)
	e.postExecute(ts, blk, append(subActuals, actuals...), actuals, rec)
	e.tracef("q%d plan rows=%.1f cost=%.0f exec=%.4fs compile=%.4fs",
		ts, plan.Rows(), plan.Cost(), execMeter.Seconds(), compileMeter.Seconds())

	// Flight-recorder capture: the annotated plan (the same rendering
	// EXPLAIN ANALYZE produces, replayed later by EXPLAIN HISTORY) and the
	// per-operator estimate/actual pairs with their q-error.
	if rec != nil {
		rec.Plan = renderPlan(analyzeAnnotator(stats, prep))
		if qstats != nil {
			rec.ArchiveHits = qstats.ArchiveHits()
			rec.ArchiveMisses = qstats.ArchiveMisses()
		}
		for _, root := range append([]optimizer.Node{plan}, subPlanNodes...) {
			optimizer.Walk(root, func(n optimizer.Node) {
				op := flightrec.OperatorStats{EstRows: n.Rows()}
				switch t := n.(type) {
				case *optimizer.Scan:
					op.Op = t.Describe()
				case *optimizer.Join:
					op.Op = t.Describe()
				case *optimizer.Materialized:
					op.Op = t.Describe()
				}
				if st, ok := stats.Lookup(n); ok {
					op.ActRows = st.Rows
					op.QError = flightrec.QError(op.EstRows, op.ActRows)
					if op.QError > rec.WorstQError {
						rec.WorstQError = op.QError
					}
					switch n.(type) {
					case *optimizer.Scan:
						qerrorScan.Observe(op.QError)
					case *optimizer.Join:
						qerrorJoin.Observe(op.QError)
					}
				}
				rec.Operators = append(rec.Operators, op)
			})
		}
		observeAggQError(blk, plan, stats)
	}

	if mode == modeExplainAnalyze {
		explain := renderPlan(analyzeAnnotator(stats, prep))
		return &Result{
			Columns: []string{"plan"},
			Rows:    planRows(explain),
			Plan:    explain,
			Metrics: buildMetrics(&compileMeter, &execMeter),
			Prepare: prep,
		}, nil
	}

	// Store the compiled plan for reuse at this epoch. Statements with
	// IN-subqueries are excluded: semi-join lowering folded the *executed*
	// inner result into the outer block's predicates above, so their plan
	// embeds data, not just shape, and must be recompiled per execution.
	// Re-optimized statements are excluded too: the completed plan embeds
	// Materialized leaves that resolve against this statement's checkpoint
	// state, and the superseded original plan was just proven wrong — caching
	// either would poison the cache.
	if cacheKey != "" && len(blk.SemiJoins) == 0 && reopts == 0 {
		e.planCache.Put(cacheKey, cacheEpoch, &cachedPlan{blk: blk, plan: plan, prep: prep})
	}

	return &Result{
		Columns: res.Columns,
		Rows:    res.Rows,
		Plan:    renderPlan(nil),
		Metrics: buildMetrics(&compileMeter, &execMeter),
		Prepare: prep,
		Reopts:  reopts,
	}, nil
}

// RunstatsAll collects general (basic + distribution) statistics on every
// table — the paper's "general statistics" baseline setting.
func (e *Engine) RunstatsAll() error {
	ts := e.tick()
	var m costmodel.Meter
	for _, name := range e.db.TableNames() {
		tbl, _ := e.db.Table(name)
		stats, err := catalog.Runstats(tbl, ts, catalog.RunstatsOptions{}, &m, e.weights)
		if err != nil {
			return err
		}
		e.cat.SetTableStats(stats)
	}
	e.bumpArchiveEpoch()
	return nil
}

// CollectWorkloadStats precollects exact column-group statistics for every
// predicate group occurring in the given workload — the paper's "workload
// statistics" baseline: "if the workload information is available, it can
// be analyzed and all the needed statistics can be collected beforehand".
// The statistics are computed from the *current* data by full scans and
// never refreshed, so subsequent updates silently stale them.
func (e *Engine) CollectWorkloadStats(sqls []string) error {
	ts := e.tick()
	archive := core.NewArchive(0, 0)
	var m costmodel.Meter // setup cost, not charged to any query
	for _, sql := range sqls {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			continue // workloads may contain DML; skip anything unparsable as SELECT
		}
		sel, ok := stmt.(*sqlparser.SelectStmt)
		if !ok {
			continue
		}
		q, err := qgm.Build(sel, e)
		if err != nil {
			continue
		}
		for _, tc := range core.AnalyzeQuery(q, 0) {
			tbl, ok := e.db.Table(tc.Table)
			if !ok {
				continue
			}
			card := tbl.RowCount()
			archive.SetCardinality(tc.Table, int64(card), ts)
			if card == 0 {
				continue
			}
			// Exact evaluation by full scan; snapshot rows are freshly
			// materialized, so they are retained without copying.
			rows := make([][]value.Datum, 0, card)
			tbl.Scan(func(_ int, row []value.Datum) bool {
				rows = append(rows, row)
				return true
			})
			m.Add(e.weights.SeqRow * float64(len(rows)))
			domains := core.SampleDomains(tbl.Schema(), rows)
			schema := tbl.Schema()
			for c := 0; c < schema.NumColumns(); c++ {
				distinct := make(map[value.Datum]bool, card)
				for _, row := range rows {
					if !row[c].IsNull() {
						distinct[row[c]] = true
					}
				}
				if len(distinct) > 0 {
					archive.SetColumnNDV(tc.Table, schema.Column(c).Name, int64(len(distinct)), ts)
				}
			}
			for _, g := range tc.Groups {
				count := 0
				for _, row := range rows {
					match := true
					for _, p := range g {
						if !p.Matches(row) {
							match = false
							break
						}
					}
					if match {
						count++
					}
				}
				archive.Materialize(tc.Table, g, float64(count)/float64(card), ts, domains)
			}
		}
	}
	e.staticQSS = archive
	e.bumpArchiveEpoch()
	return nil
}

// WorkloadStatsArchive exposes the static baseline archive (nil unless
// CollectWorkloadStats ran).
func (e *Engine) WorkloadStatsArchive() *core.Archive { return e.staticQSS }

// MigrateStats pushes archived 1-D QSS histograms into the catalog — the
// periodic statistics-migration step.
func (e *Engine) MigrateStats() int {
	n := e.jits.MigrateToCatalog(e.tick())
	if n > 0 {
		e.bumpArchiveEpoch()
	}
	return n
}

// SaveStatistics serializes the QSS archive so a later engine instance can
// restore it (the archive persists inside the catalog in the paper's DB2
// prototype).
func (e *Engine) SaveStatistics(w io.Writer) error {
	return e.jits.SaveArchive(w)
}

// LoadStatistics restores a QSS archive previously written by
// SaveStatistics, replacing the current one.
func (e *Engine) LoadStatistics(r io.Reader) error {
	a, err := core.LoadArchive(r)
	if err != nil {
		return err
	}
	e.jits.RestoreArchive(a)
	e.bumpArchiveEpoch()
	return nil
}
