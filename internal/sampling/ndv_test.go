package sampling

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

func intColumn(vals ...int64) []value.Datum {
	out := make([]value.Datum, len(vals))
	for i, v := range vals {
		out[i] = value.NewInt(v)
	}
	return out
}

func TestEstimateNDVExactOnFullScan(t *testing.T) {
	col := intColumn(1, 2, 2, 3, 3, 3)
	if got := EstimateNDV(col, 6); got != 3 {
		t.Errorf("full-scan ndv = %d, want 3", got)
	}
	// A sample at least as large as the table is also exact.
	if got := EstimateNDV(col, 4); got != 3 {
		t.Errorf("oversized-sample ndv = %d, want 3", got)
	}
}

func TestEstimateNDVEdgeCases(t *testing.T) {
	if got := EstimateNDV(nil, 100); got != 0 {
		t.Errorf("empty column ndv = %d", got)
	}
	if got := EstimateNDV(intColumn(1, 2), 0); got != 0 {
		t.Errorf("zero-card ndv = %d", got)
	}
	nulls := []value.Datum{value.Null, value.Null}
	if got := EstimateNDV(nulls, 100); got != 0 {
		t.Errorf("all-null ndv = %d", got)
	}
	// NULLs are ignored but non-nulls still counted.
	mixed := []value.Datum{value.Null, value.NewInt(7), value.NewInt(7)}
	if got := EstimateNDV(mixed, 2); got != 1 {
		t.Errorf("mixed ndv = %d, want 1", got)
	}
}

func TestEstimateNDVKeyColumn(t *testing.T) {
	// Sample of a key column: every value distinct → estimate ≈ table card.
	n, card := 500, 10000
	col := make([]value.Datum, n)
	for i := range col {
		col[i] = value.NewInt(int64(i * 20)) // all distinct
	}
	got := EstimateNDV(col, card)
	if got < int64(card)/2 {
		t.Errorf("key ndv = %d, want close to %d", got, card)
	}
	if got > int64(card) {
		t.Errorf("ndv = %d exceeds cardinality %d", got, card)
	}
}

func TestEstimateNDVLowCardinalityColumn(t *testing.T) {
	// 10 distinct values in a big table: the sample sees all of them many
	// times (f1 ≈ 0) → estimate stays ≈ 10.
	rng := rand.New(rand.NewSource(1))
	col := make([]value.Datum, 2000)
	for i := range col {
		col[i] = value.NewInt(int64(rng.Intn(10)))
	}
	got := EstimateNDV(col, 100000)
	if got < 10 || got > 15 {
		t.Errorf("low-card ndv = %d, want ≈10", got)
	}
}

func TestEstimateNDVMidCardinalityFK(t *testing.T) {
	// Foreign-key-like column: 3000 possible parents, table of 15000 rows,
	// sample of 1500. Duj1 should land within ~2x of the truth — far better
	// than either the raw sample count (~1200) or the key assumption
	// (15000).
	rng := rand.New(rand.NewSource(2))
	truthDomain := 3000
	col := make([]value.Datum, 1500)
	for i := range col {
		col[i] = value.NewInt(int64(rng.Intn(truthDomain)))
	}
	got := EstimateNDV(col, 15000)
	if got < int64(truthDomain)/2 || got > int64(truthDomain)*2 {
		t.Errorf("fk ndv = %d, want within 2x of %d", got, truthDomain)
	}
}

func TestEstimateNDVClampedToSampleDistinct(t *testing.T) {
	// The estimate never drops below what the sample proves.
	col := intColumn(1, 2, 3, 4, 5)
	got := EstimateNDV(col, 1000000)
	if got < 5 {
		t.Errorf("ndv = %d, below the observed distinct count", got)
	}
}
