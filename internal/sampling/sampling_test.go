package sampling

import (
	"math"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/qgm"
	"repro/internal/storage"
	"repro/internal/value"
)

func numberTable(t *testing.T, n int) *storage.Table {
	t.Helper()
	tbl := storage.NewTable("t", storage.MustSchema(
		storage.Column{Name: "v", Kind: value.KindInt},
		storage.Column{Name: "parity", Kind: value.KindString},
	))
	rows := make([][]value.Datum, n)
	for i := 0; i < n; i++ {
		p := "even"
		if i%2 == 1 {
			p = "odd"
		}
		rows[i] = []value.Datum{value.NewInt(int64(i)), value.NewString(p)}
	}
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestRowsSmallTableCopiedWhole(t *testing.T) {
	tbl := numberTable(t, 50)
	var meter costmodel.Meter
	w := costmodel.DefaultWeights()
	got := New(1).Rows(tbl, 100, &meter, w)
	if len(got) != 50 {
		t.Errorf("sample = %d rows, want all 50", len(got))
	}
	if meter.Units() != w.SampleRow*50 {
		t.Errorf("meter = %v", meter.Units())
	}
}

func TestRowsLargeTableSampledWithoutReplacement(t *testing.T) {
	tbl := numberTable(t, 10000)
	var meter costmodel.Meter
	got := New(42).Rows(tbl, 500, &meter, costmodel.DefaultWeights())
	if len(got) != 500 {
		t.Fatalf("sample = %d rows, want 500", len(got))
	}
	seen := make(map[int64]bool)
	for _, row := range got {
		v := row[0].Int()
		if seen[v] {
			t.Fatalf("value %d sampled twice", v)
		}
		seen[v] = true
	}
}

func TestRowsDeterministicBySeed(t *testing.T) {
	tbl := numberTable(t, 5000)
	var m costmodel.Meter
	a := New(7).Rows(tbl, 100, &m, costmodel.DefaultWeights())
	b := New(7).Rows(tbl, 100, &m, costmodel.DefaultWeights())
	for i := range a {
		if a[i][0] != b[i][0] {
			t.Fatal("same seed must give same sample")
		}
	}
}

func TestRowsEmptyAndZero(t *testing.T) {
	tbl := numberTable(t, 0)
	var m costmodel.Meter
	if got := New(1).Rows(tbl, 10, &m, costmodel.DefaultWeights()); got != nil {
		t.Errorf("empty table sample = %v", got)
	}
	tbl2 := numberTable(t, 10)
	if got := New(1).Rows(tbl2, 0, &m, costmodel.DefaultWeights()); got != nil {
		t.Errorf("zero-size sample = %v", got)
	}
}

func TestRowsRepresentative(t *testing.T) {
	tbl := numberTable(t, 20000)
	var m costmodel.Meter
	sample := New(3).Rows(tbl, 2000, &m, costmodel.DefaultWeights())
	odd := 0
	for _, row := range sample {
		if row[1].Str() == "odd" {
			odd++
		}
	}
	frac := float64(odd) / float64(len(sample))
	if math.Abs(frac-0.5) > 0.05 {
		t.Errorf("odd fraction = %v, want ≈0.5", frac)
	}
}

func TestEvaluateGroups(t *testing.T) {
	// Sample of 10 rows: v = 0..9, parity strings.
	sample := make([][]value.Datum, 10)
	for i := range sample {
		p := "even"
		if i%2 == 1 {
			p = "odd"
		}
		sample[i] = []value.Datum{value.NewInt(int64(i)), value.NewString(p)}
	}
	pv5 := qgm.Predicate{Column: "v", Ordinal: 0, Op: qgm.OpGE, Value: value.NewInt(5)}
	podd := qgm.Predicate{Column: "parity", Ordinal: 1, Op: qgm.OpEQ, Value: value.NewString("odd")}
	groups := [][]qgm.Predicate{
		{pv5},       // 5..9 -> 0.5
		{podd},      // 1,3,5,7,9 -> 0.5
		{pv5, podd}, // 5,7,9 -> 0.3
		{},          // empty group -> 1
	}
	var meter costmodel.Meter
	w := costmodel.DefaultWeights()
	sel := EvaluateGroups(sample, groups, &meter, w)
	want := []float64{0.5, 0.5, 0.3, 1}
	for i := range want {
		if math.Abs(sel[i]-want[i]) > 1e-12 {
			t.Errorf("group %d selectivity = %v, want %v", i, sel[i], want[i])
		}
	}
	// Shared vectors: only 2 distinct predicates evaluated.
	if got := meter.Units(); got != w.PredEval*float64(len(sample))*2 {
		t.Errorf("meter = %v, want cost of 2 predicate vectors", got)
	}
}

func TestEvaluateGroupsEmptySample(t *testing.T) {
	var meter costmodel.Meter
	groups := [][]qgm.Predicate{{{Column: "v", Op: qgm.OpEQ, Value: value.NewInt(1)}}}
	sel := EvaluateGroups(nil, groups, &meter, costmodel.DefaultWeights())
	if len(sel) != 1 || sel[0] != 0 {
		t.Errorf("sel = %v", sel)
	}
}

func TestSelectivityFloor(t *testing.T) {
	if got := SelectivityFloor(2000); got != 0.5/2000 {
		t.Errorf("floor(2000) = %v", got)
	}
	if got := SelectivityFloor(0); got != 0.001 {
		t.Errorf("floor(0) = %v", got)
	}
	if got := SelectivityFloor(-5); got != 0.001 {
		t.Errorf("floor(-5) = %v", got)
	}
}

func BenchmarkSample2000From100k(b *testing.B) {
	tbl := storage.NewTable("t", storage.MustSchema(storage.Column{Name: "v", Kind: value.KindInt}))
	rows := make([][]value.Datum, 100000)
	for i := range rows {
		rows[i] = []value.Datum{value.NewInt(int64(i))}
	}
	if err := tbl.InsertBatch(rows); err != nil {
		b.Fatal(err)
	}
	s := New(1)
	var m costmodel.Meter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Rows(tbl, 2000, &m, costmodel.DefaultWeights())
	}
}
