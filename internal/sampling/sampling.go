// Package sampling implements the row sampling that powers JITS statistics
// collection. The paper's prototype invokes RUNSTATS with sampling and
// constructs on-the-fly sampling queries to collect specific predicate
// selectivities; here a Sampler draws a fixed-size random sample of a table
// (the paper notes the sample size sufficient for accurate statistics is
// independent of the table size) and EvaluateGroups computes the observed
// selectivity of every candidate predicate group from that one sample —
// which is why the sensitivity analysis treats all of a table's candidate
// groups as one unit: "once a table is sampled, it is relatively cheap to
// collect the selectivities of all predicate groups that belong to this
// table".
package sampling

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/costmodel"
	"repro/internal/faultinject"
	"repro/internal/qgm"
	"repro/internal/storage"
	"repro/internal/value"
)

// evalMorselSize is the number of sample rows (or whole predicates) one
// parallel evaluation worker claims at a time.
const evalMorselSize = 512

// forEachChunk runs fn over [0, n) in fixed-size chunks across up to dop
// workers, claiming chunks from an atomic cursor. fn must only write state
// owned by its chunk. Serial (and deterministic in call order) at dop <= 1.
//
// A panic inside fn (or an injected worker panic) stops the remaining
// workers, is re-raised on the caller's goroutine after every worker has
// exited, and never leaks a goroutine; JITS.Prepare recovers it into a
// degraded, catalog-fallback preparation.
func forEachChunk(n, dop, chunkSize int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	run := func(lo, hi int) {
		faultinject.SleepIf(faultinject.MorselLatency)
		if err := faultinject.Hit(faultinject.WorkerPanic); err != nil {
			panic(err)
		}
		fn(lo, hi)
	}
	chunks := (n + chunkSize - 1) / chunkSize
	if dop > chunks {
		dop = chunks
	}
	if dop <= 1 {
		for c := 0; c < chunks; c++ {
			hi := (c + 1) * chunkSize
			if hi > n {
				hi = n
			}
			run(c*chunkSize, hi)
		}
		return
	}
	var (
		cursor    atomic.Int64
		stop      atomic.Bool
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicVal  any
	)
	for w := 0; w < dop; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicOnce.Do(func() { panicVal = p })
					stop.Store(true)
				}
			}()
			for !stop.Load() {
				c := int(cursor.Add(1)) - 1
				if c >= chunks {
					return
				}
				hi := (c + 1) * chunkSize
				if hi > n {
					hi = n
				}
				run(c*chunkSize, hi)
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// Sampler draws deterministic pseudo-random samples; a fixed seed makes
// whole experiment runs reproducible.
type Sampler struct {
	rng *rand.Rand
}

// New returns a sampler seeded for reproducibility.
func New(seed int64) *Sampler {
	return &Sampler{rng: rand.New(rand.NewSource(seed))}
}

// EffectiveSampleRows reports how many rows a sample request for size rows
// from a tableRows-row table will actually materialize: tables smaller than
// twice the sample size are copied whole (cheaper than distinct-pick
// bookkeeping). Memory accounting must reserve for this number, not for the
// nominal size.
func EffectiveSampleRows(tableRows, size int) int {
	if tableRows <= 0 || size <= 0 {
		return 0
	}
	if tableRows <= size*2 {
		return tableRows
	}
	return size
}

// Rows draws up to size rows from the table. Tables smaller than twice the
// sample size are copied whole (cheaper than distinct-pick bookkeeping);
// larger tables are sampled uniformly without replacement. The meter is
// charged per sampled row — page-level sampling cost is proportional to the
// sample, not the table, mirroring the paper's observation that collection
// cost is independent of table size.
func (s *Sampler) Rows(tbl *storage.Table, size int, meter *costmodel.Meter, w costmodel.Weights) [][]value.Datum {
	return s.RowsParallel(tbl, size, meter, w, 1)
}

// Sample is the fault-aware sampling entry point JITS uses: it honors
// cancellation and the sampling.rows fault point before touching the table,
// then draws exactly what RowsParallel draws. A returned error means no
// sample (and no RNG consumption), so the caller can degrade to catalog
// statistics without perturbing later draws.
func (s *Sampler) Sample(ctx context.Context, tbl *storage.Table, size int, meter *costmodel.Meter, w costmodel.Weights, dop int) ([][]value.Datum, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if err := faultinject.Hit(faultinject.SamplingRows); err != nil {
		return nil, err
	}
	return s.RowsParallel(tbl, size, meter, w, dop), nil
}

// RowsParallel is Rows with the row fetches fanned out across up to dop
// workers. The pseudo-random pick positions are still drawn serially from
// the sampler's rng — the drawn sample, its order, and the meter charge are
// identical to Rows at any dop; only the copying parallelizes. All fetches
// go through one table snapshot: workers read the same consistent image
// lock-free, every sampled row is freshly materialized (never an aliased
// window into live storage), and concurrent DML cannot shrink the table out
// from under a drawn position.
func (s *Sampler) RowsParallel(tbl *storage.Table, size int, meter *costmodel.Meter, w costmodel.Weights, dop int) [][]value.Datum {
	snap := tbl.Snapshot()
	n := snap.NumRows()
	if n == 0 || size <= 0 {
		return nil
	}
	if EffectiveSampleRows(n, size) == n {
		// Copy the table whole, morsel-parallel in storage order. Rows come
		// straight off the snapshot's column arrays.
		chunks := (n + evalMorselSize - 1) / evalMorselSize
		buckets := make([][][]value.Datum, chunks)
		forEachChunk(n, dop, evalMorselSize, func(lo, hi int) {
			rows := make([][]value.Datum, 0, hi-lo)
			snap.ScanRange(lo, hi, func(_ int, row []value.Datum) bool {
				rows = append(rows, row)
				return true
			})
			buckets[lo/evalMorselSize] = rows
		})
		var out [][]value.Datum
		for _, b := range buckets {
			out = append(out, b...)
		}
		meter.Add(w.SampleRow * float64(len(out)))
		return out
	}
	picked := make(map[int]bool, size)
	positions := make([]int, 0, size)
	for len(positions) < size {
		idx := s.rng.Intn(n)
		if picked[idx] {
			continue
		}
		picked[idx] = true
		positions = append(positions, idx)
	}
	out := make([][]value.Datum, len(positions))
	forEachChunk(len(positions), dop, evalMorselSize, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			// Positions were drawn against the snapshot's row count, so the
			// fetch cannot fail.
			out[i], _ = snap.Row(positions[i])
		}
	})
	meter.Add(w.SampleRow * float64(len(out)))
	return out
}

// EvaluateGroups returns the observed selectivity of each predicate group
// over the sample. Per-predicate match vectors are computed once and shared
// across groups, so the cost is dominated by |sample| × |distinct
// predicates|, not by the exponential group count. A nil sample yields all
// zeros.
func EvaluateGroups(sample [][]value.Datum, groups [][]qgm.Predicate, meter *costmodel.Meter, w costmodel.Weights) []float64 {
	return EvaluateGroupsParallel(sample, groups, meter, w, 1)
}

// EvaluateGroupsParallel is EvaluateGroups with both phases fanned out
// across up to dop workers: each distinct predicate's match vector is
// computed by row-morsels, and the per-group conjunction counts run one
// group per worker. Selectivities and meter totals are identical to the
// serial evaluation at any dop (each worker charges a local sub-meter,
// merged once), so compile-time statistics — and therefore plans — do not
// depend on the degree of parallelism.
func EvaluateGroupsParallel(sample [][]value.Datum, groups [][]qgm.Predicate, meter *costmodel.Meter, w costmodel.Weights, dop int) []float64 {
	out := make([]float64, len(groups))
	if len(sample) == 0 {
		return out
	}

	// Distinct predicates across all groups, in deterministic first-use
	// order; each gets one shared match vector.
	type predEntry struct {
		pred qgm.Predicate
		vec  []bool
	}
	index := make(map[string]int)
	var entries []*predEntry
	for _, group := range groups {
		for _, p := range group {
			k := p.String()
			if _, ok := index[k]; !ok {
				index[k] = len(entries)
				entries = append(entries, &predEntry{pred: p})
			}
		}
	}

	// Phase 1: match vectors, one predicate per chunk (vectors are
	// independent; rows within a vector stay sequential for locality).
	forEachChunk(len(entries), dop, 1, func(lo, hi int) {
		sub := meter.Worker()
		for ei := lo; ei < hi; ei++ {
			e := entries[ei]
			v := make([]bool, len(sample))
			for i, row := range sample {
				v[i] = e.pred.Matches(row)
			}
			e.vec = v
			sub.Add(w.PredEval * float64(len(sample)))
		}
		sub.Merge()
	})

	// Phase 2: conjunction counts, one group per chunk.
	forEachChunk(len(groups), dop, 1, func(lo, hi int) {
		for gi := lo; gi < hi; gi++ {
			group := groups[gi]
			if len(group) == 0 {
				out[gi] = 1
				continue
			}
			vecs := make([][]bool, len(group))
			for i, p := range group {
				vecs[i] = entries[index[p.String()]].vec
			}
			count := 0
		rows:
			for i := range sample {
				for _, v := range vecs {
					if !v[i] {
						continue rows
					}
				}
				count++
			}
			out[gi] = float64(count) / float64(len(sample))
		}
	})
	return out
}

// EstimateNDV estimates a column's number of distinct values from a sample
// of n rows out of a table of tableCard rows, using the Duj1 estimator of
// Haas et al. (the one RUNSTATS-style sampled statistics collection uses):
//
//	d̂ = d / (1 − (1−q)·f1/n)
//
// where d is the distinct count in the sample, f1 the number of values
// appearing exactly once, and q = n/N the sampling fraction. NULLs in the
// sample column are ignored. The result is clamped to [d, N].
func EstimateNDV(column []value.Datum, tableCard int) int64 {
	counts := make(map[value.Datum]int, len(column))
	n := 0
	for _, d := range column {
		if d.IsNull() {
			continue
		}
		counts[d]++
		n++
	}
	d := int64(len(counts))
	if d == 0 || tableCard <= 0 {
		return 0
	}
	if n >= tableCard {
		return d // full scan: exact
	}
	f1 := 0
	for _, c := range counts {
		if c == 1 {
			f1++
		}
	}
	q := float64(n) / float64(tableCard)
	denom := 1 - (1-q)*float64(f1)/float64(n)
	if denom <= 0 {
		return int64(tableCard) // everything distinct in the sample: key-like
	}
	est := int64(float64(d) / denom)
	if est < d {
		est = d
	}
	if est > int64(tableCard) {
		est = int64(tableCard)
	}
	return est
}

// SelectivityFloor is the smallest selectivity a sample of the given size
// can credibly assert; observed-zero groups are floored to half a row to
// avoid zero cardinality estimates downstream.
func SelectivityFloor(sampleSize int) float64 {
	if sampleSize <= 0 {
		return 0.001
	}
	return 0.5 / float64(sampleSize)
}
