// Package sampling implements the row sampling that powers JITS statistics
// collection. The paper's prototype invokes RUNSTATS with sampling and
// constructs on-the-fly sampling queries to collect specific predicate
// selectivities; here a Sampler draws a fixed-size random sample of a table
// (the paper notes the sample size sufficient for accurate statistics is
// independent of the table size) and EvaluateGroups computes the observed
// selectivity of every candidate predicate group from that one sample —
// which is why the sensitivity analysis treats all of a table's candidate
// groups as one unit: "once a table is sampled, it is relatively cheap to
// collect the selectivities of all predicate groups that belong to this
// table".
package sampling

import (
	"math/rand"

	"repro/internal/costmodel"
	"repro/internal/qgm"
	"repro/internal/storage"
	"repro/internal/value"
)

// Sampler draws deterministic pseudo-random samples; a fixed seed makes
// whole experiment runs reproducible.
type Sampler struct {
	rng *rand.Rand
}

// New returns a sampler seeded for reproducibility.
func New(seed int64) *Sampler {
	return &Sampler{rng: rand.New(rand.NewSource(seed))}
}

// Rows draws up to size rows from the table. Tables smaller than twice the
// sample size are copied whole (cheaper than distinct-pick bookkeeping);
// larger tables are sampled uniformly without replacement. The meter is
// charged per sampled row — page-level sampling cost is proportional to the
// sample, not the table, mirroring the paper's observation that collection
// cost is independent of table size.
func (s *Sampler) Rows(tbl *storage.Table, size int, meter *costmodel.Meter, w costmodel.Weights) [][]value.Datum {
	n := tbl.RowCount()
	if n == 0 || size <= 0 {
		return nil
	}
	if n <= size*2 {
		out := make([][]value.Datum, 0, n)
		tbl.Scan(func(_ int, row []value.Datum) bool {
			out = append(out, append([]value.Datum(nil), row...))
			return true
		})
		meter.Add(w.SampleRow * float64(len(out)))
		return out
	}
	picked := make(map[int]bool, size)
	out := make([][]value.Datum, 0, size)
	for len(out) < size {
		idx := s.rng.Intn(n)
		if picked[idx] {
			continue
		}
		picked[idx] = true
		row, err := tbl.Row(idx)
		if err != nil {
			continue // concurrent shrink; skip
		}
		out = append(out, row)
	}
	meter.Add(w.SampleRow * float64(len(out)))
	return out
}

// EvaluateGroups returns the observed selectivity of each predicate group
// over the sample. Per-predicate match vectors are computed once and shared
// across groups, so the cost is dominated by |sample| × |distinct
// predicates|, not by the exponential group count. A nil sample yields all
// zeros.
func EvaluateGroups(sample [][]value.Datum, groups [][]qgm.Predicate, meter *costmodel.Meter, w costmodel.Weights) []float64 {
	out := make([]float64, len(groups))
	if len(sample) == 0 {
		return out
	}
	type vecKey struct{ s string }
	vectors := make(map[vecKey][]bool)
	vectorFor := func(p qgm.Predicate) []bool {
		k := vecKey{p.String()}
		if v, ok := vectors[k]; ok {
			return v
		}
		v := make([]bool, len(sample))
		for i, row := range sample {
			v[i] = p.Matches(row)
		}
		vectors[k] = v
		meter.Add(w.PredEval * float64(len(sample)))
		return v
	}
	for gi, group := range groups {
		if len(group) == 0 {
			out[gi] = 1
			continue
		}
		vecs := make([][]bool, len(group))
		for i, p := range group {
			vecs[i] = vectorFor(p)
		}
		count := 0
	rows:
		for i := range sample {
			for _, v := range vecs {
				if !v[i] {
					continue rows
				}
			}
			count++
		}
		out[gi] = float64(count) / float64(len(sample))
	}
	return out
}

// EstimateNDV estimates a column's number of distinct values from a sample
// of n rows out of a table of tableCard rows, using the Duj1 estimator of
// Haas et al. (the one RUNSTATS-style sampled statistics collection uses):
//
//	d̂ = d / (1 − (1−q)·f1/n)
//
// where d is the distinct count in the sample, f1 the number of values
// appearing exactly once, and q = n/N the sampling fraction. NULLs in the
// sample column are ignored. The result is clamped to [d, N].
func EstimateNDV(column []value.Datum, tableCard int) int64 {
	counts := make(map[value.Datum]int, len(column))
	n := 0
	for _, d := range column {
		if d.IsNull() {
			continue
		}
		counts[d]++
		n++
	}
	d := int64(len(counts))
	if d == 0 || tableCard <= 0 {
		return 0
	}
	if n >= tableCard {
		return d // full scan: exact
	}
	f1 := 0
	for _, c := range counts {
		if c == 1 {
			f1++
		}
	}
	q := float64(n) / float64(tableCard)
	denom := 1 - (1-q)*float64(f1)/float64(n)
	if denom <= 0 {
		return int64(tableCard) // everything distinct in the sample: key-like
	}
	est := int64(float64(d) / denom)
	if est < d {
		est = d
	}
	if est > int64(tableCard) {
		est = int64(tableCard)
	}
	return est
}

// SelectivityFloor is the smallest selectivity a sample of the given size
// can credibly assert; observed-zero groups are floored to half a row to
// avoid zero cardinality estimates downstream.
func SelectivityFloor(sampleSize int) float64 {
	if sampleSize <= 0 {
		return 0.001
	}
	return 0.5 / float64(sampleSize)
}
