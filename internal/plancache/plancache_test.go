package plancache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestPlanCacheHitMissBasics(t *testing.T) {
	c := New(4)
	if _, ok := c.Get("a", 1); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1, "va")
	v, ok := c.Get("a", 1)
	if !ok || v.(string) != "va" {
		t.Fatalf("Get(a,1) = %v,%v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPlanCacheEpochInvalidation(t *testing.T) {
	c := New(4)
	c.Put("a", 1, "old")
	// A lookup at a newer epoch must not return the stale entry, and must
	// drop it.
	if _, ok := c.Get("a", 2); ok {
		t.Fatal("stale-epoch entry returned")
	}
	if st := c.Stats(); st.Invalidations != 1 || st.Entries != 0 {
		t.Fatalf("after stale get: %+v", st)
	}
	// Eager sweep: entries from any epoch other than current are dropped.
	c.Put("a", 2, "x")
	c.Put("b", 2, "y")
	c.Put("c", 3, "z")
	if n := c.Invalidate(3); n != 2 {
		t.Fatalf("Invalidate removed %d, want 2", n)
	}
	if _, ok := c.Get("c", 3); !ok {
		t.Fatal("current-epoch entry swept")
	}
	if st := c.Stats(); st.Invalidations != 3 {
		t.Fatalf("invalidations = %d, want 3", st.Invalidations)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	c := New(3)
	c.Put("a", 1, 1)
	c.Put("b", 1, 2)
	c.Put("c", 1, 3)
	// Touch a so b becomes the LRU victim.
	if _, ok := c.Get("a", 1); !ok {
		t.Fatal("a missing")
	}
	c.Put("d", 1, 4)
	if _, ok := c.Get("b", 1); ok {
		t.Fatal("LRU victim b survived")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k, 1); !ok {
			t.Fatalf("%s evicted, want b only", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPlanCachePropertyBounded: under a long random workload of puts, gets,
// and epoch bumps, the entry count never exceeds capacity, hits only come
// from the current epoch, and the counters reconcile.
func TestPlanCachePropertyBounded(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		cap := 1 + r.Intn(16)
		c := New(cap)
		epoch := uint64(1)
		live := map[string]uint64{} // key → epoch it was last put at
		for op := 0; op < 2000; op++ {
			key := fmt.Sprintf("k%d", r.Intn(40))
			switch r.Intn(4) {
			case 0, 1:
				c.Put(key, epoch, op)
				live[key] = epoch
			case 2:
				v, ok := c.Get(key, epoch)
				if ok {
					if live[key] != epoch {
						t.Fatalf("seed %d: hit on %q from epoch %d at epoch %d", seed, key, live[key], epoch)
					}
					if v == nil {
						t.Fatalf("seed %d: nil value on hit", seed)
					}
				}
			default:
				if r.Intn(8) == 0 {
					epoch++
					c.Invalidate(epoch)
				}
			}
			if n := c.Len(); n > cap {
				t.Fatalf("seed %d: %d entries > cap %d", seed, n, cap)
			}
		}
	}
}

// TestPlanCacheConcurrent hammers the cache from many goroutines mixing
// gets, puts and epoch sweeps; run under -race this proves the locking.
func TestPlanCacheConcurrent(t *testing.T) {
	c := New(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("k%d", r.Intn(12))
				epoch := uint64(1 + r.Intn(3))
				switch r.Intn(3) {
				case 0:
					c.Put(key, epoch, i)
				case 1:
					c.Get(key, epoch)
				default:
					c.Invalidate(epoch)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 8 {
		t.Fatalf("%d entries > cap", n)
	}
}

func TestPlanCacheNilSafe(t *testing.T) {
	var c *Cache = New(0)
	if c != nil {
		t.Fatal("capacity 0 should yield the nil (disabled) cache")
	}
	c.Put("a", 1, 1)
	if _, ok := c.Get("a", 1); ok {
		t.Fatal("nil cache hit")
	}
	c.Invalidate(2)
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
}
