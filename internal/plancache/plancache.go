// Package plancache is the engine's compiled-plan cache: a bounded LRU map
// from (normalized SQL text, archive epoch) to an opaque compiled-plan
// entry. Repeated statements — the dominant shape of served traffic — skip
// parsing, JITS preparation and optimization entirely on a hit.
//
// Correctness hinges on the epoch: the engine bumps its archive epoch on
// every statement that changes data or statistics (DML, DDL, statistics
// migration, archive restore), and a cached entry is only returned while
// its epoch matches the engine's current one. A lookup that finds an entry
// from an older epoch discards it (counted as an invalidation, then a
// miss); the engine additionally sweeps stale entries eagerly on each bump
// so the invalidation counters move with the DML that caused them, not with
// the next unlucky reader.
//
// All operations are safe for concurrent use; hits and puts take one short
// mutex. Counters are cache-owned atomics mirrored to the process-wide
// metrics registry (plan_cache_{hits,misses,evictions,invalidations}_total
// and the plan_cache_entries gauge), so SHOW METRICS and /metrics expose
// them without extra wiring.
package plancache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// DefaultSize is the entry bound selected by a negative capacity.
const DefaultSize = 256

var (
	mHits = metrics.Default().Counter(
		"plan_cache_hits_total",
		"Statements served from the compiled-plan cache.")
	mMisses = metrics.Default().Counter(
		"plan_cache_misses_total",
		"Plan-cache lookups that found no live entry.")
	mEvictions = metrics.Default().Counter(
		"plan_cache_evictions_total",
		"Entries evicted by the LRU size bound.")
	mInvalidations = metrics.Default().Counter(
		"plan_cache_invalidations_total",
		"Entries dropped because the archive epoch moved past them.")
	mEntries = metrics.Default().Gauge(
		"plan_cache_entries",
		"Live entries in the compiled-plan cache.")
)

type entry struct {
	key   string
	epoch uint64
	value any
	elem  *list.Element
}

// Cache is one engine's plan cache. Create with New; a nil *Cache is a
// valid, always-missing cache (every method is nil-receiver safe), which is
// how a cache-disabled engine pays nothing.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*entry
	lru     *list.List // front = most recently used

	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64
}

// New returns an empty cache bounded to capacity entries. capacity < 0
// selects DefaultSize; capacity == 0 returns nil (the disabled cache).
func New(capacity int) *Cache {
	if capacity == 0 {
		return nil
	}
	if capacity < 0 {
		capacity = DefaultSize
	}
	return &Cache{
		cap:     capacity,
		entries: make(map[string]*entry, capacity),
		lru:     list.New(),
	}
}

// Get returns the cached value for key if one exists at exactly the given
// epoch, marking it most recently used. An entry from another epoch is
// removed (an invalidation) and reported as a miss.
func (c *Cache) Get(key string, epoch uint64) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		mMisses.Inc()
		return nil, false
	}
	if e.epoch != epoch {
		c.removeLocked(e)
		c.invalidations.Add(1)
		mInvalidations.Inc()
		c.misses.Add(1)
		mMisses.Inc()
		return nil, false
	}
	c.lru.MoveToFront(e.elem)
	c.hits.Add(1)
	mHits.Inc()
	return e.value, true
}

// Put stores value under (key, epoch), replacing any previous entry for the
// key and evicting the least recently used entry if the size bound is hit.
func (c *Cache) Put(key string, epoch uint64, value any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.epoch = epoch
		e.value = value
		c.lru.MoveToFront(e.elem)
		return
	}
	e := &entry{key: key, epoch: epoch, value: value}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	for len(c.entries) > c.cap {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		c.removeLocked(oldest.Value.(*entry))
		c.evictions.Add(1)
		mEvictions.Inc()
	}
	mEntries.Set(float64(len(c.entries)))
}

// Invalidate removes every entry whose epoch differs from current and
// returns how many were dropped. The engine calls this as it bumps the
// archive epoch, so stale plans disappear with the DML that staled them.
func (c *Cache) Invalidate(current uint64) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.entries {
		if e.epoch != current {
			c.removeLocked(e)
			n++
		}
	}
	if n > 0 {
		c.invalidations.Add(uint64(n))
		mInvalidations.Add(float64(n))
	}
	return n
}

// Remove drops the entry for key, if any, and reports whether one was
// removed. The engine calls it when a cached plan triggers mid-query
// re-optimization: the superseded plan must not serve the next execution.
// Counted as an invalidation — the plan was proven stale, just by observed
// cardinalities rather than by the epoch.
func (c *Cache) Remove(key string) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return false
	}
	c.removeLocked(e)
	c.invalidations.Add(1)
	mInvalidations.Inc()
	return true
}

// removeLocked unlinks e; the caller holds c.mu and accounts the cause.
func (c *Cache) removeLocked(e *entry) {
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
	mEntries.Set(float64(len(c.entries)))
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats is a point-in-time view of the cache counters.
type Stats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
	Entries       int    `json:"entries"`
	Capacity      int    `json:"capacity"`
}

// Stats snapshots the counters. Safe on a nil cache (all zero).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       c.Len(),
		Capacity:      c.cap,
	}
}
