package debugserver_test

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/accuracy"
	"repro/internal/debugserver"
	"repro/internal/engine"
	"repro/internal/govern"
	"repro/internal/metrics"
)

func startedServer(t *testing.T, eng *engine.Engine) (*debugserver.Server, string) {
	t.Helper()
	srv := debugserver.New(eng)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, "http://" + addr
}

func testEngine(t *testing.T) *engine.Engine {
	t.Helper()
	cfg := engine.Config{FlightRecorderCapacity: -1}
	cfg.JITS.Enabled = true
	cfg.JITS.SMax = 0.5
	cfg.JITS.SampleSize = 100
	cfg.Accuracy = accuracy.DefaultConfig()
	e := engine.New(cfg)
	stmts := []string{
		`CREATE TABLE t (id INT, grp STRING)`,
		`INSERT INTO t VALUES (1, 'a'), (2, 'a'), (3, 'b'), (4, 'b'), (5, 'c')`,
		`SELECT id FROM t WHERE grp = 'a'`,
	}
	for _, sql := range stmts {
		if _, err := e.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func get(t *testing.T, url string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), body
}

func TestMetricsEndpointServesExposition(t *testing.T) {
	metrics.Enable()
	defer metrics.Disable()
	e := testEngine(t)
	_, base := startedServer(t, e)
	code, ctype, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("content type %q", ctype)
	}
	if !strings.Contains(string(body), "# TYPE engine_statements_total counter") {
		t.Fatalf("exposition missing statement counter:\n%s", body)
	}
}

func TestQueriesEndpoint(t *testing.T) {
	e := testEngine(t)
	_, base := startedServer(t, e)
	code, ctype, body := get(t, base+"/debug/queries")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("status %d, content type %q", code, ctype)
	}
	var got struct {
		Enabled  bool `json:"enabled"`
		Capacity int  `json:"capacity"`
		Total    int  `json:"total"`
		Records  []struct {
			QID  int64  `json:"qid"`
			SQL  string `json:"sql"`
			Kind string `json:"kind"`
		} `json:"records"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if !got.Enabled || got.Total != 3 || len(got.Records) != 3 {
		t.Fatalf("enabled=%v total=%d records=%d, want enabled, 3, 3", got.Enabled, got.Total, len(got.Records))
	}
	if got.Records[2].Kind != "select" || got.Records[2].SQL == "" {
		t.Fatalf("newest record %+v, want the SELECT", got.Records[2])
	}
	// ?last= caps the slice; a bad value is a 400.
	code, _, body = get(t, base+"/debug/queries?last=1")
	if code != http.StatusOK {
		t.Fatalf("?last=1 status %d", code)
	}
	if err := json.Unmarshal(body, &got); err != nil || len(got.Records) != 1 {
		t.Fatalf("?last=1 returned %d records (err %v)", len(got.Records), err)
	}
	if code, _, _ = get(t, base+"/debug/queries?last=bogus"); code != http.StatusBadRequest {
		t.Fatalf("?last=bogus status %d, want 400", code)
	}
}

func TestArchiveEndpoint(t *testing.T) {
	e := testEngine(t)
	_, base := startedServer(t, e)
	code, _, body := get(t, base+"/debug/archive")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var got struct {
		Histograms []struct {
			Key     string `json:"key"`
			Table   string `json:"table"`
			Buckets int    `json:"buckets"`
		} `json:"histograms"`
		Buckets     int `json:"buckets"`
		MemoEntries int `json:"memo_entries"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
}

func TestHealthEndpointTransitions(t *testing.T) {
	e := testEngine(t)
	_, base := startedServer(t, e)
	var got struct {
		Status      string           `json:"status"`
		Degradation map[string]int64 `json:"degradation"`
	}
	_, _, body := get(t, base+"/debug/health")
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Status != "ok" {
		t.Fatalf("status %q, want ok", got.Status)
	}
	for _, key := range []string{"cancelled", "budget_exhausted", "sampling_error", "panic"} {
		if _, present := got.Degradation[key]; !present {
			t.Fatalf("degradation counter %q missing: %s", key, body)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, body = get(t, base+"/debug/health")
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Status != "closed" {
		t.Fatalf("status after Close %q, want closed", got.Status)
	}
}

// TestHealthGovernorSection: the health payload carries the governor
// snapshot, and an open sampling breaker flips the endpoint to 503 so load
// balancers back off before the engine starts shedding.
func TestHealthGovernorSection(t *testing.T) {
	cfg := engine.Config{}
	cfg.Governor.Breaker = govern.BreakerConfig{LatencyThreshold: time.Millisecond}
	e := engine.New(cfg)
	if _, err := e.Exec(`CREATE TABLE t (id INT)`); err != nil {
		t.Fatal(err)
	}
	_, base := startedServer(t, e)

	var got struct {
		Status      string           `json:"status"`
		Degradation map[string]int64 `json:"degradation"`
		Governor    struct {
			BreakerState  string `json:"breaker_state"`
			GlobalMemUsed int64  `json:"global_mem_used_bytes"`
		} `json:"governor"`
	}
	code, _, body := get(t, base+"/debug/health")
	if code != http.StatusOK {
		t.Fatalf("healthy status %d, want 200", code)
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if got.Governor.BreakerState != "closed" {
		t.Fatalf("breaker_state %q, want closed", got.Governor.BreakerState)
	}
	for _, key := range []string{"memory_budget", "breaker_open"} {
		if _, present := got.Degradation[key]; !present {
			t.Fatalf("degradation counter %q missing: %s", key, body)
		}
	}

	e.Governor().SamplingBreaker().ForceOpen()
	code, _, body = get(t, base+"/debug/health")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker status %d, want 503", code)
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Status != "overloaded" || got.Governor.BreakerState != "open" {
		t.Fatalf("open-breaker payload: status=%q breaker=%q", got.Status, got.Governor.BreakerState)
	}
}

func TestNoEngineAttached(t *testing.T) {
	srv, base := startedServer(t, nil)
	for _, path := range []string{"/debug/archive", "/debug/queries"} {
		code, _, _ := get(t, base+path)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("GET %s with no engine: status %d, want 503", path, code)
		}
	}
	_, _, body := get(t, base+"/debug/health")
	if !strings.Contains(string(body), "no-engine") {
		t.Fatalf("health with no engine = %s", body)
	}
	// Attaching an engine brings the endpoints up without a restart.
	srv.SetEngine(testEngine(t))
	if code, _, _ := get(t, base+"/debug/queries"); code != http.StatusOK {
		t.Fatalf("after SetEngine: status %d", code)
	}
}

func TestPprofIndex(t *testing.T) {
	_, base := startedServer(t, testEngine(t))
	code, _, body := get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: status %d body %.80s", code, body)
	}
}

// topLevelKeys decodes a JSON object and returns its sorted top-level keys.
func topLevelKeys(t *testing.T, body []byte) []string {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("invalid JSON object: %v\n%s", err, body)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestDebugEndpointGoldenSchemas pins the top-level JSON shape of the debug
// endpoints. Dashboards and scripts key on these names; renaming or dropping
// a field is a breaking change and must show up here.
func TestDebugEndpointGoldenSchemas(t *testing.T) {
	e := testEngine(t)
	_, base := startedServer(t, e)
	golden := []struct {
		path string
		keys []string
	}{
		{"/debug/accuracy", []string{"aging", "drifted", "enabled", "fresh", "stats", "tracked"}},
		{"/debug/archive", []string{"buckets", "histograms", "memo_entries"}},
		{"/debug/queries", []string{"capacity", "enabled", "postmortems", "records", "total"}},
	}
	for _, g := range golden {
		code, ctype, body := get(t, base+g.path)
		if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
			t.Fatalf("%s: status %d, content type %q", g.path, code, ctype)
		}
		if got := topLevelKeys(t, body); strings.Join(got, ",") != strings.Join(g.keys, ",") {
			t.Errorf("%s keys = %v, want %v", g.path, got, g.keys)
		}
	}
}

// TestAccuracyEndpoint: the ledger-backed endpoint reports counts and
// per-statistic entries with the documented field names, and ?table= filters.
func TestAccuracyEndpoint(t *testing.T) {
	e := testEngine(t)
	_, base := startedServer(t, e)
	code, _, body := get(t, base+"/debug/accuracy")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var got struct {
		Enabled bool `json:"enabled"`
		Tracked int  `json:"tracked"`
		Drifted int  `json:"drifted"`
		Stats   []struct {
			Key          string    `json:"key"`
			Table        string    `json:"table"`
			State        string    `json:"state"`
			Observations uint64    `json:"observations"`
			EWMAQError   float64   `json:"ewma_qerror"`
			CUSUM        float64   `json:"cusum"`
			ChurnRows    int64     `json:"churn_rows"`
			Hist         []uint64  `json:"hist"`
			HistBounds   []float64 `json:"hist_bounds"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if !got.Enabled || got.Tracked == 0 || len(got.Stats) != got.Tracked {
		t.Fatalf("enabled=%v tracked=%d stats=%d", got.Enabled, got.Tracked, len(got.Stats))
	}
	for _, s := range got.Stats {
		if s.Table != "t" || !strings.HasPrefix(s.Key, "t(") {
			t.Errorf("unexpected stat %q for table %q", s.Key, s.Table)
		}
		if s.State != "fresh" && s.State != "aging" && s.State != "drifted" {
			t.Errorf("%s: state %q", s.Key, s.State)
		}
		if s.Observations == 0 || s.EWMAQError < 1 {
			t.Errorf("%s: observations=%d ewma_qerror=%v", s.Key, s.Observations, s.EWMAQError)
		}
		if len(s.Hist) != len(s.HistBounds)+1 {
			t.Errorf("%s: hist %d counts for %d bounds", s.Key, len(s.Hist), len(s.HistBounds))
		}
	}
	// ?table= filters; a table nobody queried yields an empty stats slice.
	code, _, body = get(t, base+"/debug/accuracy?table=nope")
	if code != http.StatusOK {
		t.Fatalf("?table=nope status %d", code)
	}
	if err := json.Unmarshal(body, &got); err != nil || len(got.Stats) != 0 {
		t.Fatalf("?table=nope returned %d stats (err %v)", len(got.Stats), err)
	}
}

// TestHealthDriftSection: /debug/health carries the ledger counts so a
// probe can alert on drifted statistics without scraping the full snapshot.
func TestHealthDriftSection(t *testing.T) {
	e := testEngine(t)
	_, base := startedServer(t, e)
	code, _, body := get(t, base+"/debug/health")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var got struct {
		Drift struct {
			Enabled bool `json:"enabled"`
			Tracked int  `json:"tracked"`
			Fresh   int  `json:"fresh"`
			Aging   int  `json:"aging"`
			Drifted int  `json:"drifted"`
		} `json:"drift"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	d := got.Drift
	if !d.Enabled || d.Tracked == 0 || d.Fresh+d.Aging+d.Drifted != d.Tracked {
		t.Fatalf("drift section = %+v", d)
	}
	if d.Drifted != 0 {
		t.Fatalf("healthy engine reports %d drifted stats", d.Drifted)
	}
}
