// Package debugserver is the engine's opt-in embedded HTTP debug endpoint.
// It serves the Prometheus metrics exposition, the Go pprof profiles, and
// JSON views of the QSS archive and the statement flight recorder — the
// operator-facing surface of the observability layer. Nothing in the engine
// depends on it; jitsbench (or any embedder) starts one explicitly with
// -debug-addr, and a process that never starts it pays nothing.
//
//	GET /metrics         Prometheus text exposition of the default registry
//	GET /debug/pprof/    net/http/pprof index (profile, heap, goroutine, …)
//	GET /debug/archive   QSS archive histograms as JSON
//	GET /debug/queries   flight-recorder records + post-mortems as JSON
//	GET /debug/accuracy  accuracy-ledger rows + drift states as JSON
//	GET /debug/health    engine open/closed + degradation + drift as JSON
//	GET /debug/sessions  live SQL-service sessions as JSON (when serving)
//
// The server holds the engine behind an atomic pointer: endpoints stay safe
// (and merely report "closed") while the engine shuts down, and a test can
// swap engines under a live server.
package debugserver

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
)

// Server is one embedded debug HTTP server. Create with New, start with
// Start, stop with Close.
type Server struct {
	eng atomic.Pointer[engine.Engine]
	// sessions supplies the live SQL-service session snapshots for
	// /debug/sessions; nil until a server is attached. Held as a pointer so
	// attachment is race-free against in-flight requests, and typed as a
	// closure so this package needs no dependency on internal/server.
	sessions atomic.Pointer[func() any]
	// draining reports whether the attached SQL service is in graceful
	// shutdown; /debug/health turns it into a 503 so load balancers stop
	// routing to this node while in-flight statements finish.
	draining atomic.Pointer[func() bool]
	ln       net.Listener
	srv      *http.Server
}

// New returns an unstarted server for the given engine (which may be nil
// and set later with SetEngine).
func New(eng *engine.Engine) *Server {
	s := &Server{}
	if eng != nil {
		s.eng.Store(eng)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/archive", s.handleArchive)
	mux.HandleFunc("/debug/queries", s.handleQueries)
	mux.HandleFunc("/debug/accuracy", s.handleAccuracy)
	mux.HandleFunc("/debug/health", s.handleHealth)
	mux.HandleFunc("/debug/sessions", s.handleSessions)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return s
}

// SetEngine swaps the engine the endpoints report on (nil detaches it).
func (s *Server) SetEngine(eng *engine.Engine) {
	if eng == nil {
		s.eng.Store(nil)
		return
	}
	s.eng.Store(eng)
}

// SetSessionSource attaches the SQL service's session snapshot function
// (typically server.Sessions wrapped to return any); nil detaches it.
func (s *Server) SetSessionSource(fn func() any) {
	if fn == nil {
		s.sessions.Store(nil)
		return
	}
	s.sessions.Store(&fn)
}

// SetDrainingSource attaches the SQL service's draining probe (typically
// server.Draining); nil detaches it.
func (s *Server) SetDrainingSource(fn func() bool) {
	if fn == nil {
		s.draining.Store(nil)
		return
	}
	s.draining.Store(&fn)
}

// Start begins listening on addr (host:port; port 0 picks a free port) and
// serves in a background goroutine until Close. It returns the bound
// address, so callers using port 0 can discover the real port.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("debugserver: listen %s: %w", addr, err)
	}
	s.ln = ln
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or "" before Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down, waiting briefly for in-flight requests.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = metrics.WriteText(w)
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// engineOr503 returns the attached engine or writes a 503 and returns nil.
func (s *Server) engineOr503(w http.ResponseWriter) *engine.Engine {
	eng := s.eng.Load()
	if eng == nil {
		http.Error(w, `{"error":"no engine attached"}`, http.StatusServiceUnavailable)
		return nil
	}
	return eng
}

func (s *Server) handleArchive(w http.ResponseWriter, _ *http.Request) {
	eng := s.engineOr503(w)
	if eng == nil {
		return
	}
	arch := eng.JITS().Archive()
	writeJSON(w, map[string]any{
		"histograms":   arch.Snapshot(),
		"buckets":      arch.Buckets(),
		"memo_entries": arch.MemoEntries(),
	})
}

func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	eng := s.engineOr503(w)
	if eng == nil {
		return
	}
	last := 0
	if v := r.URL.Query().Get("last"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &last); err != nil || last < 0 {
			http.Error(w, `{"error":"invalid last parameter"}`, http.StatusBadRequest)
			return
		}
	}
	rec := eng.Recorder()
	writeJSON(w, map[string]any{
		"enabled":     rec.Enabled(),
		"capacity":    rec.Capacity(),
		"total":       rec.Total(),
		"records":     rec.Last(last),
		"postmortems": rec.PostMortems(),
	})
}

// handleAccuracy serves the estimator-accuracy ledger: every tracked
// statistic with its freshness state and drift evidence, plus the per-state
// totals. ?table=t filters to one table's statistics.
func (s *Server) handleAccuracy(w http.ResponseWriter, r *http.Request) {
	eng := s.engineOr503(w)
	if eng == nil {
		return
	}
	led := eng.Accuracy()
	tracked, fresh, aging, drifted := led.Counts()
	writeJSON(w, map[string]any{
		"enabled": led.Enabled(),
		"tracked": tracked,
		"fresh":   fresh,
		"aging":   aging,
		"drifted": drifted,
		"stats":   led.Snapshot(r.URL.Query().Get("table")),
	})
}

func (s *Server) handleSessions(w http.ResponseWriter, _ *http.Request) {
	fn := s.sessions.Load()
	if fn == nil {
		writeJSON(w, map[string]any{"serving": false, "sessions": []any{}})
		return
	}
	writeJSON(w, map[string]any{"serving": true, "sessions": (*fn)()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	eng := s.eng.Load()
	if eng == nil {
		writeJSON(w, map[string]any{"status": "no-engine"})
		return
	}
	status := "ok"
	code := http.StatusOK
	if eng.Closed() {
		status = "closed"
	}
	gov := eng.Governor()
	// A saturated governor — breaker open (sampling tripped off) or the
	// admission queue full — makes the health probe fail, so a load balancer
	// backs off before the engine starts shedding.
	if gov.Saturated() {
		status = "overloaded"
		code = http.StatusServiceUnavailable
	}
	// A draining SQL service outranks both: the node is going away, stop
	// routing to it even though in-flight statements are still finishing.
	if fn := s.draining.Load(); fn != nil && (*fn)() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	deg := eng.Degradation()
	// Drift is surfaced on health (counts only; /debug/accuracy has the
	// rows) so a fleet dashboard sees stale statistics without another
	// scrape target — but drifted stats alone never fail the probe: the
	// node still serves correctly, just possibly with worse plans.
	tracked, fresh, aging, drifted := eng.Accuracy().Counts()
	writeJSONStatus(w, code, map[string]any{
		"status": status,
		"degradation": map[string]int64{
			"cancelled":        deg.Cancellations,
			"budget_exhausted": deg.BudgetExhausted,
			"sampling_error":   deg.SamplingErrors,
			"panic":            deg.Panics,
			"memory_budget":    deg.MemoryBudget,
			"breaker_open":     deg.BreakerOpen,
		},
		"governor": gov.Snapshot(),
		"drift": map[string]any{
			"enabled": eng.Accuracy().Enabled(),
			"tracked": tracked,
			"fresh":   fresh,
			"aging":   aging,
			"drifted": drifted,
		},
	})
}
