// Package catalog implements the system catalog's statistics store and the
// RUNSTATS-style general statistics collection the paper contrasts JITS
// against: per-table cardinality, per-column number of distinct values,
// min/max, null counts, most-frequent values and equi-depth distribution
// histograms. These are the "general statistics that can be used with any
// query"; the optimizer falls back on them (plus uniformity/independence
// assumptions) whenever no query-specific statistics are available.
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/costmodel"
	"repro/internal/histogram"
	"repro/internal/storage"
	"repro/internal/value"
)

// DefaultHistogramBuckets is the bucket target for RUNSTATS distribution
// statistics (DB2's default NUM_QUANTILES is 20).
const DefaultHistogramBuckets = 20

// DefaultFrequentValues is the number of most-frequent values retained per
// column (DB2's default NUM_FREQVALUES is 10).
const DefaultFrequentValues = 10

// FreqValue is one most-frequent-value entry.
type FreqValue struct {
	Value value.Datum
	Count int64
}

// ColumnStats are the general statistics for one column.
type ColumnStats struct {
	Column    string
	Kind      value.Kind
	NDV       int64 // number of distinct non-null values
	NullCount int64
	Min, Max  value.Datum
	Freq      []FreqValue          // most frequent values, descending count
	Hist      *histogram.Histogram // 1-D equi-depth distribution
}

// Unit returns the coordinate width of a single value in this column, used
// to close equality boxes: 1 for integers and strings, a range-relative
// epsilon for floats.
func (c *ColumnStats) Unit() float64 {
	return UnitFor(c.Kind, c.Min, c.Max)
}

// UnitFor computes the equality-box width for a column kind and value range.
func UnitFor(kind value.Kind, min, max value.Datum) float64 {
	if kind == value.KindFloat {
		span := 1.0
		if !min.IsNull() && !max.IsNull() {
			if s := max.Coord() - min.Coord(); s > 0 {
				span = s
			}
		}
		return span * 1e-9
	}
	return 1
}

// TableStats bundle everything RUNSTATS collected for one table.
type TableStats struct {
	Table           string
	Cardinality     int64
	Columns         map[string]*ColumnStats
	CollectedAt     int64 // logical timestamp of collection
	UDIAtCollection int64 // activity already counted when collected
}

// Catalog stores per-table statistics. All methods are safe for concurrent
// use.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*TableStats
}

// New returns an empty catalog — the "no initial statistics" state of the
// paper's experiments, where the optimizer runs on defaults ("fake stats").
func New() *Catalog {
	return &Catalog{tables: make(map[string]*TableStats)}
}

// TableStats returns the stored statistics for a table, if any.
func (c *Catalog) TableStats(table string) (*TableStats, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ts, ok := c.tables[table]
	return ts, ok
}

// SetTableStats installs (replacing) statistics for a table.
func (c *Catalog) SetTableStats(ts *TableStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[ts.Table] = ts
}

// Drop removes a table's statistics.
func (c *Catalog) Drop(table string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.tables, table)
}

// Clear removes all statistics, returning the catalog to the cold state.
func (c *Catalog) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables = make(map[string]*TableStats)
}

// Tables lists the tables with statistics, sorted.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for t := range c.tables {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// RunstatsOptions tune collection.
type RunstatsOptions struct {
	HistogramBuckets int // default DefaultHistogramBuckets
	FrequentValues   int // default DefaultFrequentValues
}

func (o RunstatsOptions) withDefaults() RunstatsOptions {
	if o.HistogramBuckets <= 0 {
		o.HistogramBuckets = DefaultHistogramBuckets
	}
	if o.FrequentValues <= 0 {
		o.FrequentValues = DefaultFrequentValues
	}
	return o
}

// Runstats performs a full statistics collection pass over the table —
// the traditional, decoupled-from-queries collection path. It charges the
// meter per row per column and resets the table's UDI counter, as statistics
// are now fresh.
func Runstats(tbl *storage.Table, ts int64, opts RunstatsOptions, meter *costmodel.Meter, w costmodel.Weights) (*TableStats, error) {
	opts = opts.withDefaults()
	schema := tbl.Schema()
	ncols := schema.NumColumns()

	stats := &TableStats{
		Table:       tbl.Name(),
		Columns:     make(map[string]*ColumnStats, ncols),
		CollectedAt: ts,
	}

	type colAcc struct {
		counts map[value.Datum]int64
		coords []float64
		nulls  int64
		min    value.Datum
		max    value.Datum
	}
	accs := make([]colAcc, ncols)
	for i := range accs {
		accs[i] = colAcc{counts: make(map[value.Datum]int64), min: value.Null, max: value.Null}
	}

	// Accumulate column-major over one snapshot: each column's pass streams
	// the dense chunk vectors (no per-row materialization), producing the
	// same per-column end state as the historical row-major scan — coords
	// append in storage order within each column either way.
	snap := tbl.Snapshot()
	rows := snap.NumRows()
	for c := 0; c < ncols; c++ {
		a := &accs[c]
		for ci := 0; ci < snap.NumChunks(); ci++ {
			ch := snap.Chunk(ci)
			vec := ch.Col(c)
			for i := 0; i < ch.Rows(); i++ {
				d := vec.Datum(i)
				if d.IsNull() {
					a.nulls++
					continue
				}
				a.counts[d]++
				a.coords = append(a.coords, d.Coord())
				if a.min.IsNull() || d.Compare(a.min) < 0 {
					a.min = d
				}
				if a.max.IsNull() || d.Compare(a.max) > 0 {
					a.max = d
				}
			}
		}
	}
	meter.Add(w.RunstatsRow * float64(rows) * float64(ncols))
	stats.Cardinality = int64(rows)

	for i := 0; i < ncols; i++ {
		col := schema.Column(i)
		a := &accs[i]
		cs := &ColumnStats{
			Column:    col.Name,
			Kind:      col.Kind,
			NDV:       int64(len(a.counts)),
			NullCount: a.nulls,
			Min:       a.min,
			Max:       a.max,
		}
		// Most frequent values.
		type kv struct {
			d value.Datum
			n int64
		}
		freq := make([]kv, 0, len(a.counts))
		for d, n := range a.counts {
			freq = append(freq, kv{d, n})
		}
		sort.Slice(freq, func(x, y int) bool {
			if freq[x].n != freq[y].n {
				return freq[x].n > freq[y].n
			}
			return freq[x].d.Compare(freq[y].d) < 0 // deterministic ties
		})
		top := opts.FrequentValues
		if top > len(freq) {
			top = len(freq)
		}
		for _, f := range freq[:top] {
			cs.Freq = append(cs.Freq, FreqValue{Value: f.d, Count: f.n})
		}
		// Distribution histogram over non-null coordinates.
		if len(a.coords) > 0 {
			h, err := histogram.BuildEquiDepth(col.Name, a.coords, opts.HistogramBuckets, cs.Unit(), ts)
			if err != nil {
				return nil, fmt.Errorf("catalog: building histogram for %s.%s: %w", tbl.Name(), col.Name, err)
			}
			cs.Hist = h
		}
		stats.Columns[col.Name] = cs
	}

	tbl.ResetUDI()
	return stats, nil
}
