package catalog

import (
	"math"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/histogram"
	"repro/internal/storage"
	"repro/internal/value"
)

func sampleTable(t *testing.T) *storage.Table {
	t.Helper()
	tbl := storage.NewTable("car", storage.MustSchema(
		storage.Column{Name: "id", Kind: value.KindInt},
		storage.Column{Name: "make", Kind: value.KindString},
		storage.Column{Name: "price", Kind: value.KindFloat},
	))
	makes := []string{"Toyota", "Toyota", "Toyota", "Toyota", "Honda", "Honda", "BMW", "Audi", "Audi", "Ford"}
	rows := make([][]value.Datum, 0, 100)
	for i := 0; i < 100; i++ {
		price := value.NewFloat(float64(10000 + i*500))
		if i == 99 {
			price = value.Null
		}
		rows = append(rows, []value.Datum{
			value.NewInt(int64(i)),
			value.NewString(makes[i%len(makes)]),
			price,
		})
	}
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestRunstatsBasics(t *testing.T) {
	tbl := sampleTable(t)
	var meter costmodel.Meter
	w := costmodel.DefaultWeights()
	stats, err := Runstats(tbl, 5, RunstatsOptions{}, &meter, w)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cardinality != 100 {
		t.Errorf("cardinality = %d", stats.Cardinality)
	}
	if stats.CollectedAt != 5 {
		t.Errorf("CollectedAt = %d", stats.CollectedAt)
	}
	id := stats.Columns["id"]
	if id.NDV != 100 || id.NullCount != 0 {
		t.Errorf("id stats = %+v", id)
	}
	if id.Min.Int() != 0 || id.Max.Int() != 99 {
		t.Errorf("id min/max = %v/%v", id.Min, id.Max)
	}
	mk := stats.Columns["make"]
	if mk.NDV != 5 {
		t.Errorf("make NDV = %d", mk.NDV)
	}
	// Toyota appears 40 times: must head the frequent values.
	if len(mk.Freq) == 0 || mk.Freq[0].Value.Str() != "Toyota" || mk.Freq[0].Count != 40 {
		t.Errorf("make freq = %+v", mk.Freq)
	}
	pr := stats.Columns["price"]
	if pr.NullCount != 1 || pr.NDV != 99 {
		t.Errorf("price stats: nulls=%d ndv=%d", pr.NullCount, pr.NDV)
	}
	if meter.Units() != w.RunstatsRow*100*3 {
		t.Errorf("meter = %v", meter.Units())
	}
	// Runstats resets the UDI counter.
	if tbl.UDICounter().Total() != 0 {
		t.Error("UDI not reset")
	}
}

func TestRunstatsHistogramQuality(t *testing.T) {
	tbl := sampleTable(t)
	var meter costmodel.Meter
	stats, err := Runstats(tbl, 0, RunstatsOptions{HistogramBuckets: 10}, &meter, costmodel.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	h := stats.Columns["id"].Hist
	if h == nil {
		t.Fatal("no histogram on id")
	}
	got, err := h.EstimateBox(histogram.Box{Lo: []float64{0}, Hi: []float64{50}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 0.05 {
		t.Errorf("id < 50 estimate = %v", got)
	}
	// Equality estimate via frequent values beats the histogram for the
	// heavy make: here we check the histogram at least exists for strings.
	if stats.Columns["make"].Hist == nil {
		t.Error("no histogram on make")
	}
}

func TestRunstatsEmptyTable(t *testing.T) {
	tbl := storage.NewTable("empty", storage.MustSchema(storage.Column{Name: "a", Kind: value.KindInt}))
	var meter costmodel.Meter
	stats, err := Runstats(tbl, 0, RunstatsOptions{}, &meter, costmodel.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cardinality != 0 {
		t.Errorf("cardinality = %d", stats.Cardinality)
	}
	if stats.Columns["a"].Hist != nil {
		t.Error("empty column must have nil histogram")
	}
	if !stats.Columns["a"].Min.IsNull() {
		t.Error("empty column min must be NULL")
	}
}

func TestRunstatsAllNullColumn(t *testing.T) {
	tbl := storage.NewTable("t", storage.MustSchema(storage.Column{Name: "a", Kind: value.KindInt}))
	for i := 0; i < 5; i++ {
		if err := tbl.Insert([]value.Datum{value.Null}); err != nil {
			t.Fatal(err)
		}
	}
	var meter costmodel.Meter
	stats, err := Runstats(tbl, 0, RunstatsOptions{}, &meter, costmodel.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	a := stats.Columns["a"]
	if a.NullCount != 5 || a.NDV != 0 || a.Hist != nil {
		t.Errorf("all-null stats = %+v", a)
	}
}

func TestUnitFor(t *testing.T) {
	if UnitFor(value.KindInt, value.NewInt(0), value.NewInt(100)) != 1 {
		t.Error("int unit must be 1")
	}
	if UnitFor(value.KindString, value.Null, value.Null) != 1 {
		t.Error("string unit must be 1")
	}
	u := UnitFor(value.KindFloat, value.NewFloat(0), value.NewFloat(1000))
	if u <= 0 || u > 1e-5 {
		t.Errorf("float unit = %v", u)
	}
	// Degenerate float range falls back to a positive epsilon.
	u = UnitFor(value.KindFloat, value.NewFloat(5), value.NewFloat(5))
	if u <= 0 {
		t.Errorf("degenerate float unit = %v", u)
	}
}

func TestCatalogStoreLifecycle(t *testing.T) {
	c := New()
	if _, ok := c.TableStats("car"); ok {
		t.Error("cold catalog must be empty")
	}
	c.SetTableStats(&TableStats{Table: "car", Cardinality: 10})
	c.SetTableStats(&TableStats{Table: "owner", Cardinality: 20})
	if ts, ok := c.TableStats("car"); !ok || ts.Cardinality != 10 {
		t.Errorf("car stats = %+v, %v", ts, ok)
	}
	if got := c.Tables(); len(got) != 2 || got[0] != "car" || got[1] != "owner" {
		t.Errorf("Tables = %v", got)
	}
	c.Drop("car")
	if _, ok := c.TableStats("car"); ok {
		t.Error("dropped stats still present")
	}
	c.Clear()
	if len(c.Tables()) != 0 {
		t.Error("Clear failed")
	}
}

func TestFrequentValueDeterministicOrder(t *testing.T) {
	tbl := storage.NewTable("t", storage.MustSchema(storage.Column{Name: "a", Kind: value.KindString}))
	for _, s := range []string{"b", "a", "c", "b", "a", "c"} { // all count 2
		if err := tbl.Insert([]value.Datum{value.NewString(s)}); err != nil {
			t.Fatal(err)
		}
	}
	var meter costmodel.Meter
	stats, err := Runstats(tbl, 0, RunstatsOptions{FrequentValues: 3}, &meter, costmodel.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	f := stats.Columns["a"].Freq
	if len(f) != 3 || f[0].Value.Str() != "a" || f[1].Value.Str() != "b" || f[2].Value.Str() != "c" {
		t.Errorf("freq order = %+v", f)
	}
}
