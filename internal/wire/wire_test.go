package wire

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/govern"
	"repro/internal/value"
)

func TestWireCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	reqs := []Request{
		{Type: ReqQuery, SQL: "SELECT * FROM car"},
		{Type: ReqPrepare, SQL: "SELECT 1"},
		{Type: ReqExecute, StmtID: 7},
		{Type: ReqOptions, Parallelism: 4, TimeoutMS: 250},
		{Type: ReqClose},
	}
	for _, r := range reqs {
		if err := WriteFrame(&buf, &r); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range reqs {
		var got Request
		if err := ReadFrame(&buf, &got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("frame %d: %+v != %+v", i, got, want)
		}
	}
	var eof Request
	if err := ReadFrame(&buf, &eof); err != io.EOF {
		t.Fatalf("exhausted stream: %v, want io.EOF", err)
	}
}

func TestWireValueExactFloats(t *testing.T) {
	floats := []float64{
		0, 1.5, -0.1, 1.0 / 3.0, math.Pi, 1e300, 5e-324, // denormal min
		math.Inf(1), math.Inf(-1), math.Copysign(0, -1),
	}
	for _, f := range floats {
		v := FromDatum(value.NewFloat(f))
		d, err := v.Datum()
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		got, _ := d.AsFloat()
		if math.Float64bits(got) != math.Float64bits(f) {
			t.Fatalf("float %v: round-tripped to %v (bits differ)", f, got)
		}
	}
	// NaN compares unequal to itself; check bit identity directly.
	nan := FromDatum(value.NewFloat(math.NaN()))
	d, err := nan.Datum()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := d.AsFloat()
	if !math.IsNaN(got) {
		t.Fatalf("NaN round-tripped to %v", got)
	}
}

func TestWireRowsRoundTrip(t *testing.T) {
	rows := [][]value.Datum{
		{value.NewInt(-7), value.NewString("O'Brien"), value.NewFloat(3.25), value.Null},
		{value.NewInt(0), value.NewString(""), value.NewFloat(math.Inf(1)), value.NewString("x\ny")},
	}
	dec, err := DecodeRows(EncodeRows(rows))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(rows) {
		t.Fatalf("%d rows != %d", len(dec), len(rows))
	}
	for i := range rows {
		for j := range rows[i] {
			if FromDatum(dec[i][j]) != FromDatum(rows[i][j]) {
				t.Fatalf("row %d col %d: %v != %v", i, j, dec[i][j], rows[i][j])
			}
		}
	}
	if got, err := DecodeRows(nil); got != nil || err != nil {
		t.Fatalf("DecodeRows(nil) = %v, %v", got, err)
	}
}

func TestWireFrameLimit(t *testing.T) {
	// A header announcing an absurd payload must be rejected before any
	// allocation, not trusted.
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	var req Request
	if err := ReadFrame(bytes.NewReader(hdr), &req); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestWireErrorCodes(t *testing.T) {
	cases := []struct {
		err  error
		code string
	}{
		{govern.ErrOverloaded, CodeOverloaded},
		{fmt.Errorf("admission: %w", govern.ErrOverloaded), CodeOverloaded},
		{govern.ErrMemoryBudget, CodeMemoryBudget},
		{engine.ErrClosed, CodeClosed},
		{context.DeadlineExceeded, CodeTimeout},
		{errors.New("no such table"), CodeError},
	}
	for _, c := range cases {
		if got := CodeFor(c.err); got != c.code {
			t.Fatalf("CodeFor(%v) = %q, want %q", c.err, got, c.code)
		}
	}
	// Sentinel round trip: a code's base error must satisfy errors.Is
	// against the sentinel that produced the code.
	roundTrips := []struct {
		code     string
		sentinel error
	}{
		{CodeOverloaded, govern.ErrOverloaded},
		{CodeMemoryBudget, govern.ErrMemoryBudget},
		{CodeClosed, engine.ErrClosed},
		{CodeTimeout, context.DeadlineExceeded},
	}
	for _, rt := range roundTrips {
		if !errors.Is(BaseError(rt.code), rt.sentinel) {
			t.Fatalf("BaseError(%q) does not match %v", rt.code, rt.sentinel)
		}
	}
	if BaseError(CodeError) != nil || BaseError(CodeBadRequest) != nil {
		t.Fatal("generic codes must have no sentinel")
	}
}
