package wire

import (
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"
)

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// TestReadFrameDeadlineIdle: a peer that never sends the next frame header
// trips the idle deadline — the reap signal servers act on.
func TestReadFrameDeadlineIdle(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	var req Request
	start := time.Now()
	err := ReadFrameDeadline(srv, &req, 20*time.Millisecond, 20*time.Millisecond)
	if !isTimeout(err) {
		t.Fatalf("err = %v, want deadline timeout", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("idle timeout took %v", d)
	}
}

// TestReadFrameDeadlineMidFrame: a torn frame — header promising bytes that
// never arrive — trips the (separate) frame deadline instead of hanging.
func TestReadFrameDeadlineMidFrame(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	go func() {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 64)
		_, _ = cli.Write(hdr[:]) // promise 64 payload bytes, deliver none
	}()
	var req Request
	err := ReadFrameDeadline(srv, &req, time.Second, 20*time.Millisecond)
	if !isTimeout(err) {
		t.Fatalf("err = %v, want mid-frame timeout", err)
	}
}

// TestFrameDeadlineZeroIsUnbounded: zero timeouts must behave exactly like
// the deadline-free ReadFrame/WriteFrame — the compatible default.
func TestFrameDeadlineZeroIsUnbounded(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	go func() {
		if err := WriteFrameDeadline(cli, &Request{Type: ReqPing}, 0); err != nil {
			t.Errorf("write: %v", err)
		}
	}()
	var req Request
	if err := ReadFrameDeadline(srv, &req, 0, 0); err != nil {
		t.Fatal(err)
	}
	if req.Type != ReqPing {
		t.Fatalf("decoded %+v", req)
	}
}

// TestWriteFrameDeadline: a peer that stops reading trips the write
// deadline (net.Pipe is unbuffered, so an unread write blocks immediately).
func TestWriteFrameDeadline(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	err := WriteFrameDeadline(cli, &Request{Type: ReqPing}, 20*time.Millisecond)
	if !isTimeout(err) {
		t.Fatalf("err = %v, want write timeout", err)
	}
}
