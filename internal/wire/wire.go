// Package wire defines the SQL service's TCP frame protocol, shared by
// internal/server and internal/client so the two sides can never drift.
//
// Framing is length-prefixed: each frame is a 4-byte big-endian payload
// length followed by that many bytes of JSON. A session is a sequence of
// request frames answered in order by exactly one response frame each —
// there is no pipelining, interleaving, or server push, which keeps both
// ends trivially correct and makes the protocol easy to test byte-for-byte.
//
// Request types:
//
//	hello    {type, token?}              open a session, or resume one by token
//	query    {type, id, sql}             run one statement
//	prepare  {type, sql}                 register a prepared statement
//	execute  {type, id, stmt_id}         run a prepared statement
//	options  {type, parallelism, timeout_ms}  set per-session exec options
//	ping     {type}                      liveness / keepalive probe
//	close    {type}                      end the session
//
// Response types:
//
//	welcome   {type, token, resumed}     hello acknowledgement + resume token
//	result    {type, id, result}         rows/plan/metrics of a statement
//	prepared  {type, stmt_id}            prepared-statement handle
//	ok        {type}                     options/close acknowledgement
//	pong      {type}                     ping acknowledgement
//	error     {type, id, error{code, message}}  typed failure
//
// Exactly-once retries ride on the id field: a client numbers its query/
// execute requests monotonically, the server remembers recent (id →
// response) pairs per session, and every response echoes the request's id.
// A client that loses its connection mid-round-trip reconnects, resumes its
// session by token, and re-sends the in-doubt request under its ORIGINAL
// id: if the statement already ran, the cached response comes back instead
// of a second execution (a DML can never double-apply); if it never ran, it
// runs now. Requests with id 0 opt out of deduplication — hello, options,
// prepare, ping and close are idempotent, so clients replay them freely
// after a reconnect.
//
// Error frames carry a machine-readable code so clients can reconstruct
// the engine's sentinel errors: govern.ErrOverloaded and
// govern.ErrMemoryBudget survive the wire distinctly (errors.Is works on
// the client side), as do engine-closed, server-draining and deadline
// expiry.
//
// Result rows carry typed values. Floats are encoded as hexadecimal
// strconv strings ('x' format), which round-trip float64 bit-exactly —
// including values JSON numbers cannot carry (±Inf, NaN) — so a served
// result is byte-identical to the same statement run in-process; the wire
// differential harness pins that.
package wire

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"time"

	"repro/internal/engine"
	"repro/internal/govern"
	"repro/internal/value"
)

// MaxFrameBytes bounds one frame's payload; a peer announcing more is
// corrupt or hostile and the connection is dropped.
const MaxFrameBytes = 64 << 20

// Request frame types.
const (
	ReqHello   = "hello"
	ReqQuery   = "query"
	ReqPrepare = "prepare"
	ReqExecute = "execute"
	ReqOptions = "options"
	ReqPing    = "ping"
	ReqClose   = "close"
)

// Response frame types.
const (
	RespWelcome  = "welcome"
	RespResult   = "result"
	RespPrepared = "prepared"
	RespOK       = "ok"
	RespPong     = "pong"
	RespError    = "error"
)

// Error codes carried by error frames.
const (
	CodeOverloaded    = "overloaded"     // govern.ErrOverloaded: shed by admission control
	CodeMemoryBudget  = "memory_budget"  // govern.ErrMemoryBudget: budget exhausted
	CodeClosed        = "engine_closed"  // engine.ErrClosed: engine shut down
	CodeDraining      = "draining"       // server refusing new sessions during graceful drain
	CodeTimeout       = "timeout"        // statement deadline expired
	CodeBadRequest    = "bad_request"    // malformed frame or unknown stmt_id
	CodeResumeExpired = "resume_expired" // hello named a token the server no longer holds
	CodeDedupMiss     = "dedup_miss"     // re-sent id fell out of the dedup window: outcome unknowable
	CodeError         = "error"          // anything else (parse errors, unknown tables, …)
)

// Request is one client→server frame.
type Request struct {
	Type string `json:"type"`
	// ID deduplicates query/execute requests: a client numbers them
	// monotonically per session, and a re-sent in-doubt request reuses its
	// original ID so the server can return the cached response instead of
	// executing twice. 0 opts out (idempotent frame types).
	ID uint64 `json:"id,omitempty"`
	// Token, on ReqHello, resumes the parked session it names; empty opens
	// a fresh session.
	Token string `json:"token,omitempty"`
	// Retry is the client's retry ordinal for this request (0 = first
	// attempt); the server forwards it to the flight recorder, so a
	// post-mortem shows which statements arrived through the retry path.
	Retry int    `json:"retry,omitempty"`
	SQL   string `json:"sql,omitempty"`
	// StmtID names a prepared statement for ReqExecute.
	StmtID int64 `json:"stmt_id,omitempty"`
	// Parallelism and TimeoutMS set the session's exec options (ReqOptions);
	// zero keeps the engine default.
	Parallelism int   `json:"parallelism,omitempty"`
	TimeoutMS   int64 `json:"timeout_ms,omitempty"`
}

// Response is one server→client frame.
type Response struct {
	Type string `json:"type"`
	// ID echoes the request's ID, so a client can detect a desynchronized
	// stream (a response for a different request) instead of silently
	// mis-attributing results.
	ID uint64 `json:"id,omitempty"`
	// Token, on RespWelcome, is the session's resume token; Resumed reports
	// whether hello reattached a parked session rather than opening a new one.
	Token   string  `json:"token,omitempty"`
	Resumed bool    `json:"resumed,omitempty"`
	StmtID  int64   `json:"stmt_id,omitempty"`
	Result  *Result `json:"result,omitempty"`
	Error   *Error  `json:"error,omitempty"`
}

// Error is the typed failure payload of an error frame.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Result is a statement outcome on the wire.
type Result struct {
	Columns        []string  `json:"columns,omitempty"`
	Rows           [][]Value `json:"rows,omitempty"`
	RowsAffected   int       `json:"rows_affected,omitempty"`
	Plan           string    `json:"plan,omitempty"`
	CompileSeconds float64   `json:"compile_s"`
	ExecSeconds    float64   `json:"exec_s"`
	// Degraded and DegradedTables surface the JITS graceful-degradation
	// flags ("table: reason") so clients see exactly what an embedded
	// caller would read from Result.Prepare.
	Degraded       bool     `json:"degraded,omitempty"`
	DegradedTables []string `json:"degraded_tables,omitempty"`
	// PlanCacheHit reports that the server reused a compiled plan.
	PlanCacheHit bool `json:"plan_cache_hit,omitempty"`
}

// Value is one typed datum on the wire. K is the value.Kind; exactly one
// payload field is meaningful per kind.
type Value struct {
	K uint8  `json:"k"`
	I int64  `json:"i,omitempty"`
	F string `json:"f,omitempty"` // hex float (strconv 'x'): bit-exact round trip
	S string `json:"s,omitempty"`
}

// FromDatum converts an engine datum to its wire form.
func FromDatum(d value.Datum) Value {
	switch d.Kind() {
	case value.KindInt:
		return Value{K: uint8(value.KindInt), I: d.Int()}
	case value.KindFloat:
		return Value{K: uint8(value.KindFloat), F: strconv.FormatFloat(d.Float(), 'x', -1, 64)}
	case value.KindString:
		return Value{K: uint8(value.KindString), S: d.Str()}
	default:
		return Value{K: uint8(value.KindNull)}
	}
}

// Datum converts a wire value back to an engine datum.
func (v Value) Datum() (value.Datum, error) {
	switch value.Kind(v.K) {
	case value.KindNull:
		return value.Null, nil
	case value.KindInt:
		return value.NewInt(v.I), nil
	case value.KindFloat:
		f, err := strconv.ParseFloat(v.F, 64)
		if err != nil {
			return value.Null, fmt.Errorf("wire: bad float %q: %w", v.F, err)
		}
		return value.NewFloat(f), nil
	case value.KindString:
		return value.NewString(v.S), nil
	default:
		return value.Null, fmt.Errorf("wire: unknown value kind %d", v.K)
	}
}

// EncodeRows converts engine rows to wire rows.
func EncodeRows(rows [][]value.Datum) [][]Value {
	if rows == nil {
		return nil
	}
	out := make([][]Value, len(rows))
	for i, row := range rows {
		wr := make([]Value, len(row))
		for j, d := range row {
			wr[j] = FromDatum(d)
		}
		out[i] = wr
	}
	return out
}

// DecodeRows converts wire rows back to engine rows.
func DecodeRows(rows [][]Value) ([][]value.Datum, error) {
	if rows == nil {
		return nil, nil
	}
	out := make([][]value.Datum, len(rows))
	for i, row := range rows {
		dr := make([]value.Datum, len(row))
		for j, v := range row {
			d, err := v.Datum()
			if err != nil {
				return nil, err
			}
			dr[j] = d
		}
		out[i] = dr
	}
	return out, nil
}

// WriteFrame marshals v and writes one length-prefixed frame.
func WriteFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame into v. io.EOF is returned
// untouched when the peer closed cleanly between frames.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("wire: read header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("wire: read payload: %w", err)
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("wire: unmarshal: %w", err)
	}
	return nil
}

// CodeFor maps an engine error to its wire code — the server side of the
// typed-error contract.
func CodeFor(err error) string {
	switch {
	case errors.Is(err, govern.ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, govern.ErrMemoryBudget):
		return CodeMemoryBudget
	case errors.Is(err, engine.ErrClosed):
		return CodeClosed
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return CodeTimeout
	default:
		return CodeError
	}
}

// BaseError returns the sentinel error a wire code stands for, or nil when
// the code has no sentinel — the client side of the typed-error contract.
// CodeDraining maps to engine.ErrClosed: to a caller, a draining server and
// a closed engine mean the same thing — take the statement elsewhere.
func BaseError(code string) error {
	switch code {
	case CodeOverloaded:
		return govern.ErrOverloaded
	case CodeMemoryBudget:
		return govern.ErrMemoryBudget
	case CodeClosed, CodeDraining:
		return engine.ErrClosed
	case CodeTimeout:
		return context.DeadlineExceeded
	default:
		return nil
	}
}

// ReadFrameDeadline reads one frame from conn under staged deadlines: the
// header read (waiting for the next frame to start) is bounded by idle, the
// payload read (a frame already in flight) by frame. Zero disables either
// stage. This is the server's stalled-peer defence — a session that never
// sends another frame is reaped by idle, one that tears off mid-frame is
// reaped by frame — without the two very different patience windows
// collapsing into one knob.
func ReadFrameDeadline(conn net.Conn, v any, idle, frame time.Duration) error {
	var hdr [4]byte
	if idle > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(idle))
	} else {
		_ = conn.SetReadDeadline(time.Time{})
	}
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("wire: read header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	if frame > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(frame))
	} else {
		_ = conn.SetReadDeadline(time.Time{})
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return fmt.Errorf("wire: read payload: %w", err)
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("wire: unmarshal: %w", err)
	}
	return nil
}

// WriteFrameDeadline writes one frame to conn, bounding the write by frame
// (zero disables the deadline). A peer that stopped reading eventually
// fills the kernel buffers; the deadline turns that silent stall into an
// error the caller can act on.
func WriteFrameDeadline(conn net.Conn, v any, frame time.Duration) error {
	if frame > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(frame))
	} else {
		_ = conn.SetWriteDeadline(time.Time{})
	}
	return WriteFrame(conn, v)
}
