GO ?= go

.PHONY: all build test race vet bench bench-smoke bench-columnar debug-smoke drift-smoke reopt-smoke overload-smoke serve-smoke fuzz chaos chaos-net check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The morsel-driven executor's concurrency tests (shared meters, parallel
# scans/joins/aggregation, concurrent DML) only prove anything under the
# race detector; CI runs this target.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Telemetry must be free when nobody is looking: the disabled-path
# benchmarks for the metrics registry, the phase tracer and the flight
# recorder next to the bare atomic-load baseline, plus the end-to-end
# statement benchmark with the recorder on/off, all with -benchmem so an
# unexpected allocation on a disabled path fails review at a glance. CI
# runs this target.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Disabled|AtomicLoadBaseline|NilTracer' -benchmem ./internal/metrics/ ./internal/tracing/ ./internal/flightrec/ ./internal/accuracy/
	$(GO) test -run '^$$' -bench 'StatementRecorder|StatementLedger' -benchmem ./internal/engine/

# Columnar execution smoke: a small rowwise-vs-vectorized sweep through the
# real jitsbench harness. The sweep itself cross-checks every configuration's
# result fingerprints and simulated cost against the rowwise serial baseline,
# so this doubles as a differential proof on real hardware. CI runs this
# target; for the full before/after numbers see results/ and run
# `jitsbench -exp columnar -scale 1.0`.
bench-columnar:
	$(GO) run ./cmd/jitsbench -exp columnar -scale 0.004 -queries 60 -sample 800

# Drift-detection smoke: the accuracy ledger's unit proofs plus the
# clock-injected quick drift run — warm a JITS engine, freeze collection,
# shift one table's distribution mid-run, and assert the ledger flags
# exactly that table as drifted. Pure Go, deterministic (logical-tick clock,
# seeded workload). CI runs this target; for the committed sweep see
# results/drift.csv and run `jitsbench -exp drift`.
drift-smoke:
	$(GO) test -count=1 -run 'TestLedger|TestDriftQuick' ./internal/accuracy/ ./internal/experiments/

# Mid-query re-optimization proofs under the race detector: the 220-statement
# reopt-on/off/serial differential at dop 1 and 4, the forced-misestimate
# chaos pass (estimates skewed 16x, results must match the fault-free
# baseline), the stale-plan cache canary, the recorder/ledger feedback
# cross-check, and the three-mode experiment gate (reopt beats both static
# baselines on simulated time and terminal q-error). CI runs this target; for
# the committed numbers see results/reopt.csv and run `jitsbench -exp reopt`.
reopt-smoke:
	$(GO) test -race -count=1 \
		-run 'TestReoptDifferential|TestChaosMisestimateReopt|TestReoptPlanCacheCanary|TestReoptShowQueries|TestFeedbackCrossCheck|TestReoptQuick|TestScaleIf' \
		./internal/engine/ ./internal/experiments/ ./internal/faultinject/

# End-to-end smoke of the embedded debug server: launches jitsbench with
# -debug-addr on a free port and validates /metrics, /debug/health,
# /debug/queries and /debug/archive with a pure-Go client (no curl). CI
# runs this target.
debug-smoke:
	$(GO) run ./cmd/debugsmoke

# Resource-governor proofs under the race detector: admission shedding and
# cancel-while-queued (engine + gate), memory-budget bounding, the sampling
# circuit breaker end to end, the govern.pressure chaos storm, and the
# overload experiment's accounting invariants. CI runs this target.
overload-smoke:
	$(GO) test -race -count=1 -run 'TestGate|TestBreaker|TestReservation|TestStatementMemoryBudget|TestSamplingShrinks|TestAdmissionOverload|TestCancelWhileQueued|TestBreakerTripsEndToEnd|TestChaosGovernPressure|TestOverloadQuick' \
		./internal/govern/ ./internal/engine/ ./internal/experiments/

# SQL service proofs under the race detector: the wire codec, the
# multi-session server (smoke, raw frames, concurrent-session stress,
# close-drains-governor), the plan cache (unit + property + engine
# end-to-end: DML invalidation, normalization sharing), SQL normalization,
# and the serving-throughput experiment. CI runs this target.
serve-smoke:
	$(GO) test -race -count=1 \
		-run 'TestWire|TestServe|TestSession|TestServerClose|TestPlanCache|TestNormalize|TestShowQueriesQIDs' \
		./internal/wire/ ./internal/server/ ./internal/client/ ./internal/plancache/ \
		./internal/sqlparser/ ./internal/engine/ ./internal/experiments/

# Short live run of the serial-vs-parallel differential fuzzer; the seed
# corpus alone is replayed by every plain `make test`.
fuzz:
	$(GO) test -run TestDifferential -fuzz=FuzzParallelSerial -fuzztime=30s ./internal/engine/

# Chaos differential replay: the workload under deterministic injected
# faults (scan errors, sampling failures, worker panics, latency+deadlines,
# archive corruption). -count=2 re-arms every schedule from scratch, so a
# test that forgot to reset the fault registry fails here.
chaos:
	$(GO) test -run Chaos -count=2 ./...

# Network chaos under the race detector: the full workload replayed through
# fault-injected connections (latency, stalls, torn writes, resets) with
# client retries on, asserting byte-identical results against a fault-free
# engine and zero double-applied DML; plus the exactly-once, drain, reap and
# client-resilience proofs. CI runs this target.
chaos-net:
	$(GO) test -race -count=1 \
		-run 'TestNetChaos|TestExactlyOnce|TestShutdown|TestStalledPeer|TestTornFrame|TestCloseMidRoundTrip|TestDrainingHealth|TestRetry|TestReconnect|TestFreshSession|TestConn|TestReadFrameDeadline|TestWriteFrameDeadline|TestServeChaosQuick' \
		./internal/server/ ./internal/client/ ./internal/wire/ ./internal/faultinject/ ./internal/experiments/

check: build vet test race serve-smoke
