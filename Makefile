GO ?= go

.PHONY: all build test race vet bench bench-smoke fuzz chaos check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The morsel-driven executor's concurrency tests (shared meters, parallel
# scans/joins/aggregation, concurrent DML) only prove anything under the
# race detector; CI runs this target.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Telemetry must be free when nobody is looking: the disabled-path
# benchmarks for the metrics registry and the phase tracer next to the bare
# atomic-load baseline, all with -benchmem so an unexpected allocation on
# the disabled path fails review at a glance. CI runs this target.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Disabled|AtomicLoadBaseline|NilTracer' -benchmem ./internal/metrics/ ./internal/tracing/

# Short live run of the serial-vs-parallel differential fuzzer; the seed
# corpus alone is replayed by every plain `make test`.
fuzz:
	$(GO) test -run TestDifferential -fuzz=FuzzParallelSerial -fuzztime=30s ./internal/engine/

# Chaos differential replay: the workload under deterministic injected
# faults (scan errors, sampling failures, worker panics, latency+deadlines,
# archive corruption). -count=2 re-arms every schedule from scratch, so a
# test that forgot to reset the fault registry fails here.
chaos:
	$(GO) test -run Chaos -count=2 ./...

check: build vet test race
